/**
 * @file
 * Component micro-benchmarks (google-benchmark): the cost of the
 * shaper decision logic, the DRAM timing checker, MI computation, and
 * whole-system simulation rate. These back the paper's "hardware
 * overhead is minimal" claim at the model level and document the
 * simulator's own speed.
 */

#include <vector>

#include <benchmark/benchmark.h>

#include "src/camouflage/bin_shaper.h"
#include "src/dram/device.h"
#include "src/security/mutual_information.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/presets.h"

using namespace camo;

namespace {

void
BM_BinShaperTickAndIssue(benchmark::State &state)
{
    shaper::BinShaper bins(shaper::BinConfig::desired());
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        bins.tick(now);
        int consumed = bins.consumeReal(now);
        benchmark::DoNotOptimize(consumed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinShaperTickAndIssue);

void
BM_DramDeviceCanIssue(benchmark::State &state)
{
    dram::DramOrganization org;
    dram::DramTiming timing;
    dram::DramDevice dev(org, timing);
    dram::DramAddress da{0, 0, 3, 100, 5};
    std::uint64_t now = 0;
    for (auto _ : state) {
        ++now;
        bool ok = dev.canIssue(dram::Cmd::ACT, da, now);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramDeviceCanIssue);

void
BM_DramReadStream(benchmark::State &state)
{
    dram::DramOrganization org;
    dram::DramTiming timing;
    for (auto _ : state) {
        dram::DramDevice dev(org, timing);
        std::uint64_t now = 0;
        std::uint64_t served = 0;
        // Stream 64 row-hit reads through one bank.
        dram::DramAddress da{0, 0, 0, 7, 0};
        while (served < 64) {
            ++now;
            if (!dev.isRowOpen(da) &&
                dev.canIssue(dram::Cmd::ACT, da, now)) {
                dev.issue(dram::Cmd::ACT, da, now);
            } else if (dev.isRowHit(da) &&
                       dev.canIssue(dram::Cmd::RD, da, now)) {
                da.column = static_cast<std::uint32_t>(served % 128);
                dev.issue(dram::Cmd::RD, da, now);
                ++served;
            }
        }
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(64 *
                            static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramReadStream);

void
BM_SystemSimulationRate(benchmark::State &state)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    sim::System system(cfg, sim::adversaryMix("mcf", "astar"));
    for (auto _ : state)
        system.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel("simulated CPU cycles/s");
}
BENCHMARK(BM_SystemSimulationRate);

/**
 * Calendar-queue hot loop: one schedule + one popDue per simulated
 * cycle across a realistic component population (the System graph is
 * ~35 components). Catches event-wheel regressions without the noise
 * of a full-system run.
 */
void
BM_EventSchedulerScheduleAndPop(benchmark::State &state)
{
    const std::size_t ids =
        static_cast<std::size_t>(state.range(0));
    sim::EventScheduler sched(ids);
    std::vector<std::uint32_t> due;
    Cycle now = 0;
    std::uint64_t v = 99;
    for (auto _ : state) {
        ++now;
        // A component re-arms at a pseudo-random horizon each cycle;
        // the mix of near and far wakeups exercises bucket wrap.
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint32_t id =
            static_cast<std::uint32_t>((v >> 33) % ids);
        sched.scheduleAt(id, now + 1 + ((v >> 17) & 1023));
        sched.popDue(now, due);
        benchmark::DoNotOptimize(due.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventSchedulerScheduleAndPop)->Arg(35)->Arg(256);

/**
 * Same-cycle FIFO ordering cost: N ids land on one cycle, and the
 * pop must sort them back into scheduling order. This is the
 * worst-case drain the System sees when a busy cycle wakes the whole
 * graph.
 */
void
BM_EventSchedulerSameCycleFifo(benchmark::State &state)
{
    const std::size_t ids =
        static_cast<std::size_t>(state.range(0));
    sim::EventScheduler sched(ids);
    std::vector<std::uint32_t> due;
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        for (std::size_t i = 0; i < ids; ++i)
            sched.scheduleAt(static_cast<std::uint32_t>(i), now);
        sched.popDue(now, due);
        benchmark::DoNotOptimize(due.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * static_cast<std::int64_t>(ids)));
    state.SetLabel("wakeups/s");
}
BENCHMARK(BM_EventSchedulerSameCycleFifo)->Arg(35)->Arg(256);

void
BM_MutualInformation(benchmark::State &state)
{
    security::JointDistribution joint(33, 32);
    std::uint64_t v = 12345;
    for (std::size_t i = 0; i < 20000; ++i) {
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        joint.add((v >> 16) % 33, (v >> 40) % 32);
    }
    for (auto _ : state) {
        double mi = joint.mutualInformationBitsCorrected();
        benchmark::DoNotOptimize(mi);
    }
}
BENCHMARK(BM_MutualInformation);

} // namespace

BENCHMARK_MAIN();
