/**
 * @file
 * Figure 9: accumulated memory-request return-time difference seen by
 * the ADVERSARY between w(ADVERSARY, astar) and w(ADVERSARY, mcf).
 *
 * Under FR-FCFS the difference grows without bound (the adversary can
 * tell which neighbour it runs with: a timing channel). With Response
 * Camouflage shaping the adversary's responses to one fixed
 * distribution, the curve stays flat.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 1200000;
constexpr const char *kAdversary = "bzip";

std::vector<security::LatencySample>
adversaryLatencies(const std::string &victim, bool respc,
                   const shaper::BinConfig *resp_bins)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.recordLatencies = true;
    if (respc) {
        cfg.mitigation = sim::Mitigation::RespC;
        cfg.shapeCore = {true, false, false, false}; // shape the ADV
        cfg.respBins = *resp_bins;
    }
    sim::System system(cfg, sim::adversaryMix(kAdversary, victim));
    system.run(kRunCycles);
    return system.latencyLog(0);
}

shaper::BinConfig
measuredResponseBins(const std::string &victim)
{
    // Measure the adversary's response inter-arrival distribution in
    // the reference mix and program it as the RespC target.
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.recordTraffic = true;
    sim::System system(cfg, sim::adversaryMix(kAdversary, victim));
    system.run(kRunCycles / 2);
    return sim::binsFromMonitor(system.responseMonitor(0),
                                kRunCycles / 2,
                                cfg.respBins.replenishPeriod,
                                /*headroom=*/1.0);
}

void
printSeries(const char *label,
            const std::vector<security::LatencySample> &a,
            const std::vector<security::LatencySample> &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    std::printf("\n# %s: accumulated (lat_mcf - lat_astar) over the "
                "first %zu adversary requests\n", label, n);
    std::printf("request_index accumulated_diff_cycles\n");
    long long acc = 0;
    const std::size_t step = std::max<std::size_t>(1, n / 20);
    for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<long long>(b[i].latency) -
               static_cast<long long>(a[i].latency);
        if (i % step == 0 || i + 1 == n)
            std::printf("%13zu %lld\n", i, acc);
    }
    const double per_req =
        n ? static_cast<double>(acc) / static_cast<double>(n) : 0.0;
    std::printf("# drift: %.2f cycles/request (flat ~ 0 means no "
                "leak)\n", per_req);
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 9: return-time difference between "
                "w(%s, astar) and w(%s, mcf)\n", kAdversary, kAdversary);

    // Unprotected FR-FCFS.
    const auto frfcfs_astar = adversaryLatencies("astar", false, nullptr);
    const auto frfcfs_mcf = adversaryLatencies("mcf", false, nullptr);
    printSeries("FR-FCFS (paper: grows to ~2e6 cycles)", frfcfs_astar,
                frfcfs_mcf);

    // Response Camouflage: both mixes shaped to the same response
    // distribution. Target the *slower* (mcf) mix: throttling to a
    // slower distribution is exact, while acceleration is best-effort
    // via scheduler priority (paper SIII-B1).
    const auto bins = measuredResponseBins("mcf");
    std::printf("\n# RespC bin config: %s\n", bins.toString().c_str());
    const auto respc_astar = adversaryLatencies("astar", true, &bins);
    const auto respc_mcf = adversaryLatencies("mcf", true, &bins);
    printSeries("RespC (paper: flat)", respc_astar, respc_mcf);
    return 0;
}
