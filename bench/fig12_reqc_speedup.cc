/**
 * @file
 * Figure 12: single-program speedup of Request Camouflage over a
 * static (constant-rate) limiter at the same 1 GB/s average budget.
 *
 * The static shaper allows one request every 1/(1GB/s / 64B) seconds;
 * Camouflage spends the same budget as a distribution with burst-
 * friendly low-interval bins, so bursty applications recover the
 * latency the rate limiter forces onto every request.
 * Paper: geomean 1.12x; mcf 1.48x, omnetpp 1.47x, hmmer/gcc/apache
 * ~1.1x, low-intensity apps ~1.0x.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/sweep.h"
#include "src/common/stats.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

constexpr Cycle kMeasureCycles = 600000;
constexpr Cycle kWarmup = 50000;

/**
 * The shared per-application budget. The paper used 1 GB/s on its
 * traces; our synthetic workloads have different absolute intensities
 * (DESIGN.md §5), so the equivalent "budget below the intense apps'
 * burst demand but above their average" point is a 40-cycle interval
 * (= 3.84 GB/s at 2.4 GHz and 64 B lines). Override with argv[1].
 */
Cycle g_cs_interval = 40;

/** Same budget as the CS interval, spent as a bursty distribution. */
shaper::BinConfig
burstyBudget(Cycle period)
{
    const auto total =
        static_cast<std::uint32_t>(period / g_cs_interval);
    // Front-load roughly half the credits so bursts pass back-to-back,
    // and decay the rest across the longer-interval bins.
    std::vector<std::uint32_t> credits(10, 0);
    credits[0] = total / 2;
    std::uint32_t rest = total - credits[0];
    for (std::size_t i = 1; i < credits.size() && rest > 0; ++i) {
        const std::uint32_t c = std::max<std::uint32_t>(1, rest / 2);
        credits[i] = c;
        rest -= c;
    }
    credits[9] += rest;
    return shaper::BinConfig::geometric(credits, 20, 1.7, period);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        g_cs_interval = static_cast<Cycle>(std::atol(argv[1]));
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 12: ReqC speedup vs static 1 GB/s rate "
                "limiter (single program, same average budget)\n");
    const shaper::BinConfig reqc = burstyBudget(10000);
    std::printf("# CS: 1 request / %llu cycles; ReqC: %s "
                "(total %llu credits)\n\n",
                static_cast<unsigned long long>(g_cs_interval),
                reqc.toString().c_str(),
                static_cast<unsigned long long>(reqc.totalCredits()));

    std::printf("%-10s %10s %10s %9s\n", "workload", "CS IPC",
                "ReqC IPC", "speedup");
    // One CS + one ReqC run per workload, fanned across the pool.
    const auto names = trace::workloadNames();
    std::vector<bench::SimJob> jobs;
    for (const std::string &name : names) {
        sim::SystemConfig cs = sim::paperConfig();
        cs.numCores = 1;
        cs.mitigation = sim::Mitigation::CS;
        cs.csInterval = g_cs_interval;
        cs.fakeTraffic = false; // isolate the shaping policy itself
        jobs.push_back({cs, {name}, kMeasureCycles, kWarmup});

        sim::SystemConfig rc = sim::paperConfig();
        rc.numCores = 1;
        rc.mitigation = sim::Mitigation::ReqC;
        rc.reqBins = reqc;
        rc.fakeTraffic = false;
        jobs.push_back({rc, {name}, kMeasureCycles, kWarmup});
    }
    const auto metrics = bench::sweep(jobs);

    std::vector<double> speedups;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &cs_m = metrics[2 * i];
        const auto &rc_m = metrics[2 * i + 1];
        const double speedup = rc_m.ipc[0] / cs_m.ipc[0];
        speedups.push_back(speedup);
        std::printf("%-10s %10.3f %10.3f %9.3f\n", names[i].c_str(),
                    cs_m.ipc[0], rc_m.ipc[0], speedup);
    }
    std::printf("%-10s %10s %10s %9.3f   (paper: 1.12)\n", "GEOMEAN",
                "", "", geomean(speedups));
    return 0;
}
