/**
 * @file
 * §IV-C / Figure 8, full online operation: CONFIG_PHASE + RUN_PHASE
 * with phase-change-triggered reconfiguration.
 *
 * A phase-heavy mix runs under BDC three ways: a hand-written static
 * configuration, a one-shot GA configuration, and the adaptive
 * runtime that re-runs the GA when the EWMA phase detector fires —
 * each reconfiguration charged against the E x log2(R) leakage
 * budget.
 */

#include <cstdio>
#include <cstdlib>

#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 1500000;

} // namespace

int
main(int argc, char **argv)
{
    ga::GaConfig ga_cfg;
    ga_cfg.generations = argc > 1 ? std::atoi(argv[1]) : 6;
    ga_cfg.populationSize = argc > 2 ? std::atoi(argv[2]) : 12;

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# SIV-C online operation: static vs one-shot GA vs "
                "adaptive reconfiguration\n");
    const auto mix = sim::adversaryMix("bzip", "apache");
    std::printf("# mix: w(bzip, apache x3) — apache's on/off phases "
                "are the adaptation target\n\n");

    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;

    // The three deployment modes share nothing, so they run as three
    // parallel jobs: the hand-written static configuration, the
    // one-shot GA then a static run (the paper's "GA at the beginning
    // of the program" deployment), and the adaptive runtime.
    struct ModeResult
    {
        sim::RunMetrics m;
        sim::OnlineGaResult tuned;   // one-shot GA mode only
        sim::AdaptiveResult adaptive;// adaptive mode only
    };
    const auto modes = sim::parallelMap(3, 0, [&](std::size_t i) {
        ModeResult r;
        if (i == 0) {
            r.m = sim::runConfig(cfg, mix, kRunCycles, 30000);
        } else if (i == 1) {
            r.tuned = sim::runOnlineGa(cfg, mix, ga_cfg);
            sim::SystemConfig tuned_cfg = cfg;
            tuned_cfg.reqBinsPerCore = r.tuned.reqBinsPerCore;
            tuned_cfg.respBinsPerCore = r.tuned.respBinsPerCore;
            r.m = sim::runConfig(tuned_cfg, mix, kRunCycles, 30000);
        } else {
            sim::AdaptiveConfig ad;
            ad.ga = ga_cfg;
            r.adaptive = sim::runAdaptive(cfg, mix, kRunCycles, ad);
        }
        return r;
    });
    const auto &static_m = modes[0].m;
    const auto &tuned = modes[1].tuned;
    const auto &oneshot_m = modes[1].m;
    const auto &adaptive = modes[2].adaptive;

    std::printf("%-22s %12s %14s %14s\n", "mode", "throughput",
                "reconfigs", "leak bound");
    std::printf("%-22s %12.3f %14s %14s\n", "static DESIRED",
                static_m.throughput(), "0", "0.0");
    std::printf("%-22s %12.3f %14s %14.1f\n", "one-shot GA",
                oneshot_m.throughput(), "1",
                tuned.configPhaseLeakBoundBits);
    std::printf("%-22s %12.3f %14llu %14.1f\n", "adaptive",
                adaptive.metrics.throughput(),
                static_cast<unsigned long long>(
                    adaptive.reconfigurations),
                adaptive.leakBoundBits);
    std::printf("\nadaptive details: %llu phase changes detected, "
                "reconfigured at cycles:",
                static_cast<unsigned long long>(
                    adaptive.phaseChangesDetected));
    for (const Cycle c : adaptive.reconfigAt)
        std::printf(" %llu", static_cast<unsigned long long>(c));
    std::printf("\n# expectation: GA modes beat the static hand "
                "configuration; adaptation spends leakage budget\n"
                "# (E x log2 R per reconfiguration) for robustness to "
                "phase changes\n");
    return 0;
}
