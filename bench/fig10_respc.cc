/**
 * @file
 * Figure 10: Response Camouflage performance.
 *
 * (a) w(ADVERSARY, astar) with the ADVERSARY's responses shaped to the
 *     response distribution it would see in w(ADVERSARY, mcf): the
 *     adversary is throttled to sustain the illusion (paper: ADV
 *     slowdown 1.00-1.09, geomean 1.03; throughput ~1.02).
 * (b) w(ADVERSARY, mcf) shaped to the w(ADVERSARY, astar) response
 *     distribution: RespC must accelerate the adversary via scheduler
 *     priority (paper: ADV "slowdown" 0.92-1.00, i.e. it speeds up;
 *     throughput cost 1.01-1.12, geomean 1.03).
 *
 * Each of the 11 workloads plays the ADVERSARY in turn.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

constexpr Cycle kMeasureCycles = 400000;
constexpr Cycle kWarmup = 40000;

shaper::BinConfig
responseBinsOfMix(const std::string &adv, const std::string &victim)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.recordTraffic = true;
    sim::System system(cfg, sim::adversaryMix(adv, victim));
    system.run(kMeasureCycles);
    return sim::binsFromMonitor(system.responseMonitor(0),
                                kMeasureCycles,
                                cfg.respBins.replenishPeriod,
                                /*headroom=*/1.05);
}

void
runCase(const char *title, const std::string &run_victim,
        const std::string &target_victim)
{
    std::printf("\n# %s\n", title);
    std::printf("%-10s %18s %18s\n", "ADVERSARY", "ADV slowdown",
                "throughput slowdown");
    std::vector<double> adv_slow, tput_slow;

    // Each adversary needs three chained simulations (the target-mix
    // distribution pre-run, the baseline, and the shaped run);
    // adversaries are independent of one another, so each chain is
    // one job of the parallel map.
    struct CasePoint
    {
        double advSlowdown = 0.0;
        double tputSlowdown = 0.0;
    };
    const auto names = trace::workloadNames();
    const auto points = sim::parallelMap(
        names.size(), 0, [&](std::size_t i) {
            const std::string &adv = names[i];
            const auto mix = sim::adversaryMix(adv, run_victim);

            sim::SystemConfig base_cfg = sim::paperConfig();
            const auto base = sim::runConfig(base_cfg, mix,
                                             kMeasureCycles, kWarmup);

            sim::SystemConfig shaped_cfg = sim::paperConfig();
            shaped_cfg.mitigation = sim::Mitigation::RespC;
            shaped_cfg.shapeCore = {true, false, false, false};
            shaped_cfg.respBins = responseBinsOfMix(adv, target_victim);
            const auto shaped = sim::runConfig(
                shaped_cfg, mix, kMeasureCycles, kWarmup);

            CasePoint p;
            p.advSlowdown = base.ipc[0] / shaped.ipc[0];
            p.tputSlowdown = base.throughput() / shaped.throughput();
            return p;
        });

    for (std::size_t i = 0; i < names.size(); ++i) {
        adv_slow.push_back(points[i].advSlowdown);
        tput_slow.push_back(points[i].tputSlowdown);
        std::printf("%-10s %18.3f %18.3f\n", names[i].c_str(),
                    points[i].advSlowdown, points[i].tputSlowdown);
    }
    std::printf("%-10s %18.3f %18.3f\n", "GEOMEAN", geomean(adv_slow),
                geomean(tput_slow));
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 10: RespC performance (slowdown = "
                "baseline IPC / shaped IPC; < 1 means speedup)\n");

    runCase("(a) w(ADV, astar) shaped to the w(ADV, mcf) response "
            "distribution (paper geomean: ADV 1.03, tput 1.02)",
            "astar", "mcf");
    runCase("(b) w(ADV, mcf) shaped to the w(ADV, astar) response "
            "distribution (paper geomean: ADV 0.97, tput 1.03)",
            "mcf", "astar");
    return 0;
}
