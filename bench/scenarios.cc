/**
 * @file
 * Attack-scenario catalog measurements (BENCH_scenarios.json).
 *
 * Runs every registered scenario (src/scenario/scenario.h) open and
 * shaped and records, per scenario: the covert decoder's bit-error
 * rate and implied binary-channel capacity, the windowed MI between
 * the victim's intrinsic traffic and the probe's latencies, the
 * benign-core slowdown under shaping, and RFM stall counts where the
 * RowHammer defense is in play.
 *
 * Two derived indicator columns are the CI gates (tools/benchdiff):
 *
 *  - channel_open       = 1.0 iff the unshaped channel is real: BER
 *                         well below the 0.5 coin-flip line for covert
 *                         scenarios, windowed MI above the noise floor
 *                         for key-less ones.
 *  - shaping_effective  = 1.0 iff the shaped run measurably reduces
 *                         the channel (capacity or MI).
 *
 * Both must stay at 1.0; the raw BER/MI/slowdown numbers ride along
 * as informational rows. Everything here is simulated time, so the
 * report is machine-independent and byte-comparable across hosts.
 *
 * Usage: bench_scenarios [OUT.json] [CYCLES]   (CYCLES 0 = per-spec
 * default; smaller values speed up smoke runs but weaken the
 * indicators, so the committed baseline uses the default).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/common/logging.h"
#include "src/obs/benchdiff.h"
#include "src/obs/json.h"
#include "src/scenario/scenario.h"

using namespace camo;

namespace {

/** BER this far under 0.5 means the decoder genuinely reads bits. */
constexpr double kOpenBerCeiling = 0.25;
/** Windowed MI above this is signal, not estimator noise. */
constexpr double kMiNoiseFloorBits = 0.05;

bool
channelOpen(const scenario::ScenarioSpec &spec,
            const scenario::ChannelMeasurement &open)
{
    if (spec.senderCore != scenario::ScenarioSpec::kNoCore)
        return open.ber <= kOpenBerCeiling &&
               open.windowMiBits >= kMiNoiseFloorBits;
    return open.windowMiBits >= kMiNoiseFloorBits;
}

bool
shapingEffective(const scenario::ScenarioSpec &spec,
                 const scenario::ScenarioResult &r)
{
    // Covert scenarios: shaping must destroy decodable capacity.
    // Key-less scenarios: it must cut the windowed MI.
    if (spec.senderCore != scenario::ScenarioSpec::kNoCore)
        return r.shaped.channelCapacityBits <
               0.5 * r.open.channelCapacityBits;
    return r.shaped.windowMiBits < 0.5 * r.open.windowMiBits;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_scenarios.json";
    const Cycle cycles =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

    obs::json::Value root = obs::json::Value::makeObject();
    root["schema_version"] =
        obs::json::Value(obs::kBenchSchemaVersion);
    root["bench"] = obs::json::Value("scenarios");
    root["build"] = obs::buildInfoJson();

    obs::json::Value rows = obs::json::Value::makeArray();
    std::printf("%-14s %9s %9s %9s %9s %9s %9s\n", "scenario",
                "ber_open", "ber_shpd", "mi_open", "mi_shpd",
                "slowdown", "rfm_open");
    for (const scenario::ScenarioSpec &spec : scenario::scenarios()) {
        const scenario::ScenarioResult r =
            scenario::evaluateScenario(spec, cycles);
        const bool covert =
            spec.senderCore != scenario::ScenarioSpec::kNoCore;

        obs::json::Value row = obs::json::Value::makeObject();
        row["name"] = obs::json::Value(spec.name);
        if (covert) {
            row["ber_open"] = obs::json::Value(r.open.ber);
            row["ber_shaped"] = obs::json::Value(r.shaped.ber);
            row["capacity_open_bits_per_pulse"] =
                obs::json::Value(r.open.channelCapacityBits);
            row["capacity_shaped_bits_per_pulse"] =
                obs::json::Value(r.shaped.channelCapacityBits);
        }
        row["window_mi_open_bits"] =
            obs::json::Value(r.open.windowMiBits);
        row["window_mi_shaped_bits"] =
            obs::json::Value(r.shaped.windowMiBits);
        row["slowdown"] = obs::json::Value(r.slowdown);
        row["throughput_open"] = obs::json::Value(r.open.throughput);
        row["throughput_shaped"] =
            obs::json::Value(r.shaped.throughput);
        if (r.open.rfmStalls || r.shaped.rfmStalls) {
            row["rfm_stalls_open"] =
                obs::json::Value(r.open.rfmStalls);
            row["rfm_stalls_shaped"] =
                obs::json::Value(r.shaped.rfmStalls);
        }
        row["channel_open"] =
            obs::json::Value(channelOpen(spec, r.open) ? 1.0 : 0.0);
        row["shaping_effective"] =
            obs::json::Value(shapingEffective(spec, r) ? 1.0 : 0.0);
        rows.push(std::move(row));

        std::printf("%-14s %9.3f %9.3f %9.4f %9.4f %9.3f %9llu\n",
                    spec.name.c_str(), covert ? r.open.ber : 0.5,
                    covert ? r.shaped.ber : 0.5, r.open.windowMiBits,
                    r.shaped.windowMiBits, r.slowdown,
                    static_cast<unsigned long long>(r.open.rfmStalls));
    }
    root["scenarios"] = std::move(rows);

    std::ofstream os(out_path);
    if (!os)
        camo_fatal("cannot open ", out_path);
    os << root.dump(2) << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
