/**
 * @file
 * Figure 2: the security/performance trade-off space.
 *
 * X axis: system throughput (sum of IPC). Y axis: leakage, measured
 * as the windowed mutual information between the victim's intrinsic
 * request activity and the adversary's observed response latencies
 * (the quantity a response-inspecting attacker actually extracts, so
 * it is comparable across all schemes).
 *
 * Camouflage traces a curve through the space by scaling its bin
 * budget; CS, TP, FS and no-shaping are single points. Paper: the
 * Camouflage region dominates — for a given leakage it keeps more
 * performance than CS/TP/FS.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 4000000;
constexpr Cycle kMiWindow = 10000;
constexpr std::size_t kMiLevels = 4;
constexpr std::uint32_t kVictim = 1;

struct Point
{
    std::string label;
    double throughput = 0.0;
    double leakBits = 0.0;
};

Point
evaluate(const std::string &label, sim::SystemConfig cfg)
{
    cfg.recordTraffic = true;
    cfg.recordLatencies = true;
    sim::System system(cfg, sim::adversaryMix("probe", "apache"));
    system.run(kRunCycles);

    Point p;
    p.label = label;
    // Throughput over the three application cores (the probe's IPC is
    // wall-clock pinned and carries no performance signal).
    for (std::uint32_t i = 1; i < system.numCores(); ++i)
        p.throughput += system.coreAt(i).ipc();
    const auto mi = security::computeWindowedCrossMi(
        system.intrinsicMonitor(kVictim).events(), system.latencyLog(0),
        kMiWindow, kMiLevels);
    p.leakBits = mi.miBits;
    return p;
}

shaper::BinConfig
scaledDesired(double scale)
{
    shaper::BinConfig cfg = shaper::BinConfig::desired();
    for (auto &c : cfg.credits) {
        c = static_cast<std::uint32_t>(c * scale + 0.5);
    }
    if (cfg.totalCredits() == 0)
        cfg.credits.back() = 1;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figure 2: security vs performance trade-off space\n");
    std::printf("# mix: w(probe=ADVERSARY, apache=victim); leakage = "
                "windowed MI(victim requests; ADV latencies), "
                "window=%llu cycles\n\n",
                static_cast<unsigned long long>(kMiWindow));

    // Collect every point's configuration, then evaluate them all in
    // parallel (each evaluate() owns its System).
    std::vector<std::pair<std::string, sim::SystemConfig>> cases;

    {
        sim::SystemConfig cfg = sim::paperConfig();
        cases.emplace_back("no-shaping", cfg);
    }
    {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::TP;
        cases.emplace_back("TP", cfg);
    }
    {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::FS;
        cases.emplace_back("FS", cfg);
    }
    for (const Cycle interval : {90u, 150u, 240u}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::CS;
        cfg.csInterval = interval;
        cfg.shapeCore = {false, true, true, true}; // protect victims
        cases.emplace_back("CS interval=" + std::to_string(interval),
                           cfg);
    }
    // The sweep stops at 3x: with paper-faithful (indistinguishable)
    // fake traffic, every unused credit becomes a real DRAM access,
    // so budgets past the channel's per-core fair share saturate the
    // memory system and collapse throughput -- over-provisioning a
    // fake-filling shaper is self-defeating.
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 3.0}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::BDC;
        cfg.reqBins = scaledDesired(scale);
        cfg.respBins = scaledDesired(scale);
        cfg.shapeCore = {false, true, true, true};
        char label[48];
        std::snprintf(label, sizeof label, "Camouflage x%.1f", scale);
        cases.emplace_back(label, cfg);
    }

    const std::vector<Point> points = sim::parallelMap(
        cases.size(), 0, [&](std::size_t i) {
            return evaluate(cases[i].first, cases[i].second);
        });

    std::printf("%-22s %12s %14s\n", "scheme", "throughput",
                "leakage(bits)");
    for (const Point &p : points) {
        std::printf("%-22s %12.3f %14.4f\n", p.label.c_str(),
                    p.throughput, p.leakBits);
    }
    std::printf("\n# paper: Camouflage's curve spans from CS-like "
                "(low leak, lower perf) toward no-shaping "
                "(high perf), dominating TP/FS\n");
    return 0;
}
