/**
 * @file
 * Shared sweep helper for the bench drivers: collect the independent
 * runConfig() calls of a figure into a job list, fan them across the
 * worker pool, then print from the in-order results.
 *
 * Worker count comes from the CAMO_JOBS environment variable (or the
 * machine's core count when unset); CAMO_JOBS=1 recovers the
 * sequential loop. Results are byte-identical either way -- see the
 * determinism contract in src/sim/parallel.h.
 */

#ifndef CAMO_BENCH_SWEEP_H
#define CAMO_BENCH_SWEEP_H

#include <vector>

#include "src/sim/parallel.h"

namespace camo::bench {

using sim::SimJob;

/** Run every job (in parallel), results in submission order. */
inline std::vector<sim::RunMetrics>
sweep(const std::vector<SimJob> &jobs, unsigned num_jobs = 0)
{
    return sim::runConfigsParallel(jobs, num_jobs);
}

} // namespace camo::bench

#endif // CAMO_BENCH_SWEEP_H
