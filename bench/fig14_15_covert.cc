/**
 * @file
 * Figures 14/15 (and Figure 4, and SIV-G): the covert-channel attack.
 *
 * A sender VM runs the paper's Algorithm 1, encoding a 32-bit key in
 * memory-traffic pulses (keys 0x2AAAAAAA and 0x01010101, as in the
 * paper). A receiver VM probes memory at a fixed cadence and decodes
 * the key from its own response latencies. We print the sender's
 * memory traffic time-series before and after Request Camouflage
 * (Figs. 14/15) and the receiver's decoded bit-error rate (SIV-G).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/security/covert_receiver.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/covert.h"

using namespace camo;

namespace {

constexpr Cycle kPulseCycles = 20000; // sender pulse ~= cycles here
constexpr std::size_t kBits = 32;
constexpr Cycle kRunCycles = kPulseCycles * (kBits + 4);

struct AttackResult
{
    std::vector<shaper::TrafficEvent> senderBus;
    double ber = 0.0;
};

AttackResult
runAttack(std::uint32_t key, bool shaped, Cycle window = 2500,
          bool demote_fakes = false)
{
    char name[32];
    std::snprintf(name, sizeof name, "covert:%08X", key);

    sim::SystemConfig cfg = sim::paperConfig();
    cfg.recordTraffic = true;
    cfg.recordLatencies = true;
    if (shaped) {
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.shapeCore = {true, false, false, false}; // shape the sender
        cfg.mc.demoteFakeTraffic = demote_fakes;
        // Short replenishment window (SIV-B4): the fake-traffic
        // takeover lag after a demand drop is one window, so shrink
        // it well below the attack's PULSE length. Credits scale with
        // the window so the bandwidth budget is window-independent.
        const Cycle base = std::max<Cycle>(3, 8 * window / 2500);
        cfg.reqBins = shaper::BinConfig::desired(base, 1.5, window);
        const double rate_scale =
            static_cast<double>(window) / 2500.0;
        for (auto &c : cfg.reqBins.credits)
            c = static_cast<std::uint32_t>(c * rate_scale + 0.5);
        if (cfg.reqBins.totalCredits() == 0)
            cfg.reqBins.credits[0] = 1;
    }
    // Core 0: covert sender; core 1: probing receiver; cores 2-3 are
    // light background load.
    sim::System system(cfg, {name, "probe", "sjeng", "sjeng"});
    system.run(kRunCycles);

    AttackResult result;
    result.senderBus = system.busMonitor(0).events();

    security::CovertDecoderConfig dec;
    dec.windowCycles = kPulseCycles;
    const auto decoded =
        security::decodeCovert(system.latencyLog(1), dec, kBits);
    result.ber =
        security::bitErrorRate(decoded.bits, trace::keyBits(key));
    return result;
}

void
printTraffic(const char *label,
             const std::vector<shaper::TrafficEvent> &events)
{
    // Bucket bus events into pulse-quarter bins and draw a bar per
    // bucket: the visual from Figs. 14/15.
    const Cycle bucket = kPulseCycles / 4;
    const std::size_t nbuckets = kRunCycles / bucket;
    std::vector<std::uint64_t> counts(nbuckets, 0);
    for (const auto &e : events) {
        const std::size_t b = e.at / bucket;
        if (b < nbuckets)
            ++counts[b];
    }
    std::uint64_t peak = 1;
    for (const auto c : counts)
        peak = std::max(peak, c);

    std::printf("%s\n  ", label);
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "#"};
    for (std::size_t b = 0; b < nbuckets; ++b) {
        const std::size_t level = counts[b] == 0
            ? 0
            : 1 + (4 * counts[b]) / peak;
        std::printf("%s", glyphs[std::min<std::size_t>(level, 5)]);
    }
    std::printf("\n");
}

void
runKey(std::uint32_t key)
{
    std::printf("\n# Key: 32'h%08X (one pulse = %llu cycles, 4 chars "
                "per pulse below)\n", key,
                static_cast<unsigned long long>(kPulseCycles));
    const auto before = runAttack(key, false);
    const auto after = runAttack(key, true);
    const auto demoted = runAttack(key, true, 2500, true);
    printTraffic("sender traffic BEFORE Camouflage:", before.senderBus);
    printTraffic("sender traffic AFTER  Camouflage:", after.senderBus);
    std::printf("receiver bit-error rate: before=%.3f after=%.3f "
                "(0.5 = channel destroyed)\n", before.ber, after.ber);
    std::printf("with the (insecure) MC fake-demotion extension: "
                "%.3f -- an MC that can tell fakes from\n"
                "real traffic re-opens the channel; see "
                "ControllerConfig::demoteFakeTraffic\n", demoted.ber);
}

} // namespace

int
main()
{
    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# Figures 14/15 + SIV-G: covert channel before/after "
                "Request Camouflage\n");
    runKey(0x2AAAAAAAu); // Figure 14
    runKey(0x01010101u); // Figure 15
    std::printf("\n# paper: Camouflage hides the pulse structure; "
                "fake traffic fills the idle periods\n");
    return 0;
}
