/**
 * @file
 * Simulator performance report (the perf-trajectory baseline).
 * Measures:
 *
 *  1. Single-thread simulation speed (CPU-cycles simulated per
 *     wall-clock second) with the idle-cycle fast-forward on vs off,
 *     per mitigation -- and asserts the two modes produce identical
 *     RunMetrics, since the fast-forward is contractually bit-exact.
 *  2. Wall-clock of a representative bench sweep at jobs=1 vs
 *     jobs=N (the parallel experiment engine), again asserting the
 *     results match exactly.
 *
 * Emits BENCH_ticks.json (override the path with argv[1]; argv[2]
 * scales the per-run cycle count), stamped with the schema version
 * and build provenance so tools/benchdiff can compare two reports
 * and CI can gate on regressions against the committed baseline.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/sweep.h"
#include "src/camouflage/bin_config.h"
#include "src/common/logging.h"
#include "src/obs/benchdiff.h"
#include "src/obs/json.h"
#include "src/sim/parallel.h"
#include "src/sim/plan.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/sim/shard.h"

using namespace camo;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
sameMetrics(const sim::RunMetrics &a, const sim::RunMetrics &b)
{
    return a.cycles == b.cycles && a.ipc == b.ipc &&
           a.retired == b.retired && a.servedReads == b.servedReads &&
           a.avgReadLatency == b.avgReadLatency && a.alpha == b.alpha;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_ticks.json";
    const Cycle cycles =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

    obs::json::Value root = obs::json::Value::makeObject();
    root["schema_version"] =
        obs::json::Value(obs::kBenchSchemaVersion);
    root["bench"] = obs::json::Value("perf_report");
    root["build"] = obs::buildInfoJson();
    root["cycles_per_run"] = obs::json::Value(cycles);

    // --- 1. tick-loop speed, fast-forward off vs on -------------
    const auto mix = sim::adversaryMix("mcf", "astar");
    obs::json::Value single = obs::json::Value::makeArray();
    std::printf("%-12s %14s %14s %9s\n", "mitigation",
                "ticks/s (loop)", "ticks/s (ff)", "speedup");
    for (const auto mit :
         {sim::Mitigation::None, sim::Mitigation::CS,
          sim::Mitigation::BDC, sim::Mitigation::TP}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = mit;

        cfg.fastForward = false;
        auto t0 = std::chrono::steady_clock::now();
        const auto plain = sim::runConfig(cfg, mix, cycles);
        const double s_plain = secondsSince(t0);

        cfg.fastForward = true;
        t0 = std::chrono::steady_clock::now();
        const auto fast = sim::runConfig(cfg, mix, cycles);
        const double s_fast = secondsSince(t0);

        camo_assert(sameMetrics(plain, fast),
                    "fast-forward diverged for mitigation ",
                    sim::mitigationName(mit));

        const double tps_plain = static_cast<double>(cycles) / s_plain;
        const double tps_fast = static_cast<double>(cycles) / s_fast;
        std::printf("%-12s %14.0f %14.0f %8.2fx\n",
                    sim::mitigationName(mit), tps_plain, tps_fast,
                    tps_fast / tps_plain);

        obs::json::Value row = obs::json::Value::makeObject();
        row["mitigation"] =
            obs::json::Value(sim::mitigationName(mit));
        row["ticks_per_sec_loop"] = obs::json::Value(tps_plain);
        row["ticks_per_sec_fastforward"] = obs::json::Value(tps_fast);
        row["speedup"] = obs::json::Value(tps_fast / tps_plain);
        single.push(std::move(row));
    }
    // --- 1b. DRAM-idle-heavy configurations ---------------------
    // The event kernel's headline case (ISSUE 7): sparse receivers
    // probing every 2000 cycles, so almost every cycle is provably
    // idle. The BDC row programs a sparse shaped distribution to
    // match (the hypervisor's choice for a low-intensity victim) --
    // with the default desired() bins BDC saturates DRAM with fakes
    // and no kernel can skip that work. A longer window than the
    // busy rows keeps the event-kernel timing above clock
    // resolution; both modes run the same window, so the bit-exact
    // assert and the per-row normalization stay valid.
    const Cycle idle_cycles = cycles * 10;
    const std::vector<std::string> idle_mix(4, "probe:2000");
    shaper::BinConfig sparse_bins;
    sparse_bins.edges = {0, 500, 1000, 2000, 4000};
    sparse_bins.credits = {0, 4, 8, 4, 1};
    sparse_bins.replenishPeriod = 30000;
    for (const auto mit :
         {sim::Mitigation::None, sim::Mitigation::BDC}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = mit;
        cfg.reqBins = sparse_bins;
        cfg.respBins = sparse_bins;

        cfg.fastForward = false;
        auto t0 = std::chrono::steady_clock::now();
        const auto plain = sim::runConfig(cfg, idle_mix, idle_cycles);
        const double s_plain = secondsSince(t0);

        cfg.fastForward = true;
        t0 = std::chrono::steady_clock::now();
        const auto fast = sim::runConfig(cfg, idle_mix, idle_cycles);
        const double s_fast = secondsSince(t0);

        camo_assert(sameMetrics(plain, fast),
                    "event kernel diverged for idle-probe ",
                    sim::mitigationName(mit));

        const std::string label =
            std::string(sim::mitigationName(mit)) + "/idle-probe";
        const double tps_plain =
            static_cast<double>(idle_cycles) / s_plain;
        const double tps_fast =
            static_cast<double>(idle_cycles) / s_fast;
        std::printf("%-22s %14.0f %14.0f %8.2fx\n", label.c_str(),
                    tps_plain, tps_fast, tps_fast / tps_plain);

        obs::json::Value row = obs::json::Value::makeObject();
        row["mitigation"] = obs::json::Value(label);
        row["ticks_per_sec_loop"] = obs::json::Value(tps_plain);
        row["ticks_per_sec_fastforward"] = obs::json::Value(tps_fast);
        row["speedup"] = obs::json::Value(tps_fast / tps_plain);
        single.push(std::move(row));
    }
    root["single_thread"] = std::move(single);

    // --- 2. per-sim setup cost: one-shot ctor vs compiled plan --
    // Sweeps construct one System per job; before the SystemPlan
    // layer every construction re-parsed workload names, re-read
    // trace files, and eagerly zeroed the tracer ring. The plan path
    // amortizes all of that, so its per-sim figure includes the
    // one-time plan compilation.
    {
        const std::vector<std::string> setup_mix = {
            "mcf", "dramsim2:@sample", "astar", "astar"};
        sim::SystemConfig setup_cfg = sim::paperConfig();
        setup_cfg.mitigation = sim::Mitigation::BDC;
        constexpr int kBuilds = 64;

        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kBuilds; ++i) {
            sim::System system(setup_cfg, setup_mix);
            (void)system;
        }
        const double per_legacy = secondsSince(t0) / kBuilds;

        t0 = std::chrono::steady_clock::now();
        const sim::SystemPlan plan(setup_cfg, setup_mix);
        for (int i = 0; i < kBuilds; ++i)
            (void)plan.instantiate();
        const double per_plan = secondsSince(t0) / kBuilds;

        std::printf("\nsetup: %.3f ms/sim one-shot, %.3f ms/sim "
                    "planned (%.2fx)\n",
                    per_legacy * 1e3, per_plan * 1e3,
                    per_legacy / per_plan);

        obs::json::Value setup = obs::json::Value::makeObject();
        setup["num_builds"] = obs::json::Value(
            static_cast<std::uint64_t>(kBuilds));
        setup["sec_per_sim_legacy"] = obs::json::Value(per_legacy);
        setup["sec_per_sim_plan"] = obs::json::Value(per_plan);
        setup["speedup"] =
            obs::json::Value(per_legacy / per_plan);
        root["setup"] = std::move(setup);
    }

    // --- 3. sweep wall-clock, jobs=1 vs jobs=N vs procs=2 -------
    std::vector<bench::SimJob> jobs;
    for (const char *adv : {"mcf", "libqt", "bzip", "apache"}) {
        for (const auto mit :
             {sim::Mitigation::None, sim::Mitigation::BDC}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mitigation = mit;
            jobs.push_back(
                {cfg, sim::adversaryMix(adv, "astar"), cycles, 0});
        }
    }
    const unsigned fan = sim::defaultJobs();

    auto t0 = std::chrono::steady_clock::now();
    const auto serial = bench::sweep(jobs, 1);
    const double s_serial = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    const auto parallel = bench::sweep(jobs, fan);
    const double s_parallel = secondsSince(t0);

    // Multi-process sharding (camosim --shard-procs): fork two
    // shards, the same worker fan-out inside each.
    constexpr unsigned kShardProcs = 2;
    t0 = std::chrono::steady_clock::now();
    const auto sharded = sim::runConfigsSharded(jobs, fan, kShardProcs);
    const double s_sharded = secondsSince(t0);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        camo_assert(sameMetrics(serial[i], parallel[i]),
                    "parallel sweep diverged at job ", i);
        camo_assert(sameMetrics(serial[i], sharded[i]),
                    "sharded sweep diverged at job ", i);
    }

    std::printf("\nsweep of %zu sims: jobs=1 %.2fs, jobs=%u %.2fs "
                "(%.2fx), procs=%u %.2fs\n",
                jobs.size(), s_serial, fan, s_parallel,
                s_serial / s_parallel, kShardProcs, s_sharded);

    obs::json::Value sweep = obs::json::Value::makeObject();
    sweep["num_sims"] = obs::json::Value(
        static_cast<std::uint64_t>(jobs.size()));
    sweep["jobs"] = obs::json::Value(
        static_cast<std::uint64_t>(fan));
    sweep["jobs_effective"] = obs::json::Value(
        static_cast<std::uint64_t>(fan));
    sweep["wall_clock_jobs1_sec"] = obs::json::Value(s_serial);
    sweep["wall_clock_jobsN_sec"] = obs::json::Value(s_parallel);
    // On a single-hardware-thread host jobs=N degenerates to serial
    // execution plus thread overhead: a "speedup" figure would be
    // noise around 1.0, so record a note instead of the number. The
    // determinism assert above still ran either way.
    if (fan <= 1) {
        sweep["note"] =
            obs::json::Value("skipped_parallel_speedup");
    } else {
        sweep["speedup"] = obs::json::Value(s_serial / s_parallel);
    }
    sweep["shard_procs"] = obs::json::Value(
        static_cast<std::uint64_t>(kShardProcs));
    sweep["wall_clock_procs2_sec"] = obs::json::Value(s_sharded);
    // Covers all three modes: jobs=1, jobs=N, and procs=2 were
    // asserted metric-identical above.
    sweep["results_identical"] = obs::json::Value(true);
    root["sweep"] = std::move(sweep);

    std::ofstream os(out_path);
    if (!os)
        camo_fatal("cannot open ", out_path);
    os << root.dump(2) << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
