/** @file Tests for the trace-driven core model and the shared channel. */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/hierarchy.h"
#include "src/core/core.h"
#include "src/noc/channel.h"
#include "src/trace/trace.h"

namespace camo {
namespace {

using core::Core;
using core::CoreConfig;

/** A scriptable trace for testing. */
class ScriptedTrace : public trace::TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<trace::TraceItem> items)
        : items_(std::move(items))
    {
    }
    const std::string &name() const override { return name_; }
    trace::TraceItem
    next(Cycle now) override
    {
        (void)now;
        if (idx_ < items_.size())
            return items_[idx_++];
        trace::TraceItem filler;
        filler.gapInstrs = 100; // endless non-memory tail
        return filler;
    }
    std::size_t consumed() const { return idx_; }

  private:
    std::vector<trace::TraceItem> items_;
    std::size_t idx_ = 0;
    std::string name_ = "scripted";
};

cache::HierarchyConfig
cacheCfg()
{
    cache::HierarchyConfig cfg;
    cfg.l1 = {1024, 2, 64, 4};
    cfg.l2 = {4096, 4, 64, 12};
    cfg.mshrs = 2;
    return cfg;
}

// ---------------------------------------------------------------- Core

TEST(Core, NonMemoryIpcApproachesWidth)
{
    ScriptedTrace trace({});
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 128}, trace, cache);
    for (Cycle t = 1; t <= 1000; ++t)
        core.tick(t);
    // Pure instruction stream: IPC should approach the 4-wide limit.
    EXPECT_GT(core.ipc(), 3.5);
    EXPECT_EQ(core.memStallCycles(), 0u);
}

TEST(Core, LoadMissStallsUntilFill)
{
    std::vector<trace::TraceItem> items(1);
    items[0].addr = 0x100000;
    ScriptedTrace trace(items);
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 8}, trace, cache);

    // Run without delivering the fill: the window fills and stalls.
    for (Cycle t = 1; t <= 50; ++t)
        core.tick(t);
    EXPECT_GT(core.memStallCycles(), 10u);
    const auto retired_before = core.retired();

    // Deliver the fill: the core drains.
    const Cycle usable = cache.onFill(0x100000, 60);
    core.onFill(0x100000, usable);
    for (Cycle t = 61; t <= 100; ++t)
        core.tick(t);
    EXPECT_GT(core.retired(), retired_before + 8);
}

TEST(Core, StoresRetireWithoutWaiting)
{
    std::vector<trace::TraceItem> items(1);
    items[0].addr = 0x100000;
    items[0].isWrite = true;
    ScriptedTrace trace(items);
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 8}, trace, cache);
    for (Cycle t = 1; t <= 100; ++t)
        core.tick(t);
    // The store miss never blocks retirement (posted via store buffer).
    EXPECT_GT(core.ipc(), 3.0);
}

TEST(Core, MshrPressureBlocksDispatch)
{
    // Three distinct-line loads but only 2 MSHRs: the third load's
    // dispatch must wait.
    std::vector<trace::TraceItem> items(3);
    for (int i = 0; i < 3; ++i)
        items[i].addr = 0x100000 + static_cast<Addr>(i) * 64;
    ScriptedTrace trace(items);
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 64}, trace, cache);
    for (Cycle t = 1; t <= 30; ++t)
        core.tick(t);
    EXPECT_EQ(cache.mshrsInUse(), 2u);
    EXPECT_GT(core.stats().counter("dispatch.blocked"), 0u);
}

TEST(Core, WaitCyclesPausesDispatch)
{
    std::vector<trace::TraceItem> items(2);
    items[0].waitCycles = 500;
    items[1].addr = 0x100000;
    ScriptedTrace trace(items);
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 128}, trace, cache);
    for (Cycle t = 1; t <= 400; ++t)
        core.tick(t);
    EXPECT_TRUE(cache.popOutgoing().empty())
        << "no memory traffic during the busy-wait";
    for (Cycle t = 401; t <= 600; ++t)
        core.tick(t);
    EXPECT_EQ(cache.popOutgoing().size(), 1u);
}

TEST(Core, EpochCountersClear)
{
    ScriptedTrace trace({});
    cache::CacheHierarchy cache(0, cacheCfg());
    Core core(0, {4, 128}, trace, cache);
    for (Cycle t = 1; t <= 100; ++t)
        core.tick(t);
    EXPECT_GT(core.retired(), 0u);
    core.clearEpochCounters();
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(core.cycles(), 0u);
}

// -------------------------------------------------------- SharedChannel

MemRequest
flit(ReqId id, CoreId core)
{
    MemRequest r;
    r.id = id;
    r.core = core;
    r.addr = 0x1000;
    return r;
}

TEST(Channel, LatencyIsRespected)
{
    noc::ChannelConfig cfg;
    cfg.latency = 6;
    noc::SharedChannel ch(2, cfg);
    ch.push(0, flit(1, 0));
    Cycle t = 0;
    Cycle arrived_at = 0;
    for (; t < 20; ++t) {
        ch.tick(t);
        if (ch.hasEgress(t)) {
            arrived_at = t;
            break;
        }
    }
    EXPECT_GE(arrived_at, cfg.latency);
    EXPECT_EQ(ch.popEgress().id, 1u);
}

TEST(Channel, OneGrantPerCycle)
{
    noc::ChannelConfig cfg;
    cfg.latency = 1;
    noc::SharedChannel ch(4, cfg);
    for (CoreId c = 0; c < 4; ++c)
        ch.push(c, flit(c, c));
    // After one tick only one flit should be in flight.
    ch.tick(1);
    EXPECT_EQ(ch.stats().counter("granted"), 1u);
    ch.tick(2);
    ch.tick(3);
    ch.tick(4);
    EXPECT_EQ(ch.stats().counter("granted"), 4u);
}

TEST(Channel, RoundRobinFairness)
{
    noc::ChannelConfig cfg;
    cfg.latency = 1;
    cfg.ingressCap = 64;
    noc::SharedChannel ch(2, cfg);
    for (int i = 0; i < 20; ++i) {
        ch.push(0, flit(static_cast<ReqId>(100 + i), 0));
        ch.push(1, flit(static_cast<ReqId>(200 + i), 1));
    }
    std::vector<CoreId> order;
    for (Cycle t = 1; order.size() < 40; ++t) {
        ch.tick(t);
        while (ch.hasEgress(t))
            order.push_back(ch.popEgress().core);
        ASSERT_LT(t, 200u);
    }
    // Strict alternation under saturation.
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_NE(order[i], order[i - 1]) << "at " << i;
}

TEST(Channel, BackpressureViaCanAccept)
{
    noc::ChannelConfig cfg;
    cfg.ingressCap = 2;
    noc::SharedChannel ch(1, cfg);
    EXPECT_TRUE(ch.canAccept(0));
    ch.push(0, flit(1, 0));
    ch.push(0, flit(2, 0));
    EXPECT_FALSE(ch.canAccept(0));
    EXPECT_DEATH(ch.push(0, flit(3, 0)), "full ingress");
}

TEST(Channel, FifoPerPort)
{
    noc::ChannelConfig cfg;
    cfg.latency = 3;
    noc::SharedChannel ch(1, cfg);
    for (ReqId i = 1; i <= 5; ++i)
        ch.push(0, flit(i, 0));
    std::vector<ReqId> order;
    for (Cycle t = 1; order.size() < 5; ++t) {
        ch.tick(t);
        while (ch.hasEgress(t))
            order.push_back(ch.popEgress().id);
        ASSERT_LT(t, 100u);
    }
    for (ReqId i = 1; i <= 5; ++i)
        EXPECT_EQ(order[i - 1], i);
}

} // namespace
} // namespace camo
