/**
 * @file
 * Simulation-kernel tests: the Component/ComponentGraph contract, the
 * typed Wire/Port links, JSON topology loading, and the system-level
 * guarantees the kernel refactor pinned — synthetic components ride
 * every plumbing path with zero edits, nextEventCycle() stays a sound
 * fast-forward bound, and fixed-seed stats output is byte-identical
 * to the pre-kernel goldens.
 */

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/hard/checkers.h"
#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/mem/memory_system.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/sim/component.h"
#include "src/sim/port.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/sim/system.h"
#include "src/sim/topology.h"

namespace camo::sim {
namespace {

// ------------------------------------------------------------- Wire

TEST(Wire, BoundedBackpressure)
{
    Wire<int> w(2);
    EXPECT_TRUE(w.canAccept());
    w.push(1);
    w.push(2);
    EXPECT_FALSE(w.canAccept());
    EXPECT_EQ(w.size(), 2u);
    EXPECT_EQ(w.pop(), 1);
    EXPECT_TRUE(w.canAccept());
    EXPECT_EQ(w.front(), 2);
    EXPECT_EQ(w.pop(), 2);
    EXPECT_TRUE(w.empty());
}

TEST(Wire, ZeroCapacityIsUnbounded)
{
    Wire<int> w;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(w.canAccept());
        w.push(i);
    }
    EXPECT_EQ(w.size(), 1000u);
}

TEST(Port, ConnectLinksBothEndpoints)
{
    Wire<int> w(1);
    OutPort<int> out;
    InPort<int> in;
    EXPECT_FALSE(out.bound());
    EXPECT_FALSE(out.canAccept()); // unbound: no backpressure grant
    EXPECT_TRUE(in.empty());
    connect(out, in, w);
    EXPECT_TRUE(out.bound());
    EXPECT_TRUE(in.bound());
    out.push(42);
    EXPECT_FALSE(out.canAccept()); // wire full
    EXPECT_EQ(in.size(), 1u);
    EXPECT_EQ(in.pop(), 42);
    EXPECT_TRUE(in.empty());
}

// --------------------------------------------------- ComponentGraph

/** Minimal component counting every kernel fan-out that reaches it. */
class Probe final : public Component
{
  public:
    explicit Probe(std::string name = "test.probe")
        : Component(std::move(name))
    {
    }

    void tick(Cycle) override { ++ticks; }
    Cycle nextEventCycle(Cycle, Cycle) const override { return kNoCycle; }
    void skipIdleCycles(Cycle n) override { skipped += n; }
    void reset() override { ++resets; }
    void attachTracer(obs::Tracer *t) override { tracer = t; }
    void attachInjector(hard::FaultInjector *f) override { injector = f; }
    void attachCheckers(hard::CheckerSet *c) override { checkers = c; }
    void
    registerStats(obs::StatRegistry &reg) const override
    {
        reg.add(name(), &stats);
    }

    std::uint64_t ticks = 0;
    Cycle skipped = 0;
    int resets = 0;
    obs::Tracer *tracer = nullptr;
    hard::FaultInjector *injector = nullptr;
    hard::CheckerSet *checkers = nullptr;
    StatGroup stats;
};

TEST(ComponentGraph, TicksInInsertionOrder)
{
    ComponentGraph g;
    std::vector<int> order;
    struct Rec final : Component
    {
        Rec(int id, std::vector<int> &log)
            : Component("rec" + std::to_string(id)), id_(id), log_(&log)
        {
        }
        void tick(Cycle) override { log_->push_back(id_); }
        int id_;
        std::vector<int> *log_;
    };
    g.emplace<Rec>(2, order);
    g.emplace<Rec>(1, order);
    g.emplace<Rec>(3, order);
    g.tick(1);
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
    EXPECT_EQ(g.size(), 3u);
    EXPECT_NE(g.find("rec1"), nullptr);
    EXPECT_EQ(g.find("nope"), nullptr);
}

TEST(ComponentGraph, NextEventCycleIsMinFold)
{
    struct Fixed final : Component
    {
        Fixed(std::string n, Cycle at) : Component(std::move(n)), at_(at)
        {
        }
        Cycle
        nextEventCycle(Cycle, Cycle from) const override
        {
            return std::max(from, at_);
        }
        Cycle at_;
    };
    ComponentGraph g;
    g.emplace<Fixed>("a", 500);
    g.emplace<Fixed>("b", 120);
    g.emplace<Fixed>("c", 900);
    EXPECT_EQ(g.nextEventCycle(99, 100), 120u);
    // A component already due clamps the fold to `from`.
    EXPECT_EQ(g.nextEventCycle(199, 200), 200u);
    ComponentGraph empty;
    EXPECT_EQ(empty.nextEventCycle(0, 1), kNoCycle);
}

TEST(ComponentGraph, StickyAttachmentsReplayOnLateAdd)
{
    ComponentGraph g;
    obs::Tracer tracer;
    g.attachTracer(&tracer);
    Probe *late = g.emplace<Probe>();
    // Added after the attach, yet wired without any extra call.
    EXPECT_EQ(late->tracer, &tracer);
}

TEST(ComponentGraph, DefaultBoundIsTriviallySound)
{
    // A component that overrides nothing must not enable skipping
    // past itself: the base nextEventCycle returns `from`.
    struct Inert final : Component
    {
        Inert() : Component("inert") {}
    };
    ComponentGraph g;
    g.emplace<Inert>();
    EXPECT_EQ(g.nextEventCycle(41, 42), 42u);
}

// ------------------------------------------- synthetic components

/**
 * The kernel's headline guarantee: a component registered through
 * System::addComponent() participates in ticking, fast-forward,
 * idle-cycle batching, stats, and every attachment fan-out with ZERO
 * edits to System plumbing.
 */
TEST(SyntheticComponent, RidesEveryPlumbingPath)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::BDC;
    System sys(cfg, adversaryMix("mcf", "astar"));

    auto owned = std::make_unique<Probe>();
    Probe *probe = static_cast<Probe *>(&sys.addComponent(std::move(owned)));

    // Visible in the topology; tracer attach replayed immediately.
    EXPECT_EQ(sys.graph().find("test.probe"), probe);
    EXPECT_EQ(probe->tracer, &sys.tracer());

    // Every simulated cycle reaches it: ticked or batch-skipped. The
    // probe's bound is kNoCycle (provably idle forever), so the event
    // kernel never schedules a tick and batches every cycle into
    // skipIdleCycles — zero ticks is the contract, not a miss.
    const Cycle kCycles = 20000;
    sys.run(kCycles);
    EXPECT_EQ(probe->ticks, 0u);
    EXPECT_EQ(probe->ticks + probe->skipped, kCycles);

    // Stat registration fans out to it.
    obs::StatRegistry reg;
    sys.registerStats(reg);
    EXPECT_EQ(reg.find("test.probe"), &probe->stats);

    // Epoch reset fans out to it.
    sys.clearEpochCounters();
    EXPECT_EQ(probe->resets, 1);

    // Hardening attachments fan out to it.
    const hard::FaultPlan plan =
        hard::FaultPlan::parse("corrupt-credits:at=900000000:core=0", 7);
    hard::FaultInjector injector(plan);
    sys.setFaultInjector(&injector);
    EXPECT_EQ(probe->injector, &injector);
    sys.enableCheckers(hard::CheckerConfig{});
    EXPECT_EQ(probe->checkers, sys.checkers());
}

TEST(SyntheticComponent, TickedEveryCycleWithoutFastForward)
{
    SystemConfig cfg = paperConfig();
    cfg.fastForward = false;
    System sys(cfg, adversaryMix("astar", "astar"));
    auto owned = std::make_unique<Probe>();
    Probe *probe = static_cast<Probe *>(&sys.addComponent(std::move(owned)));
    sys.run(5000);
    EXPECT_EQ(probe->ticks, 5000u);
    EXPECT_EQ(probe->skipped, 0u);
}

// -------------------------------------- fast-forward bound soundness

/**
 * Property: every component's nextEventCycle() is a sound lower
 * bound. If any bound were optimistic, the fast-forward path would
 * skip a cycle with observable work and the full stats tree would
 * diverge from the per-cycle loop. Randomized seeds x mitigations.
 */
TEST(FastForwardSoundness, StatsTreeIdenticalUnderRandomSeeds)
{
    const Mitigation mits[] = {Mitigation::None, Mitigation::CS,
                               Mitigation::ReqC, Mitigation::RespC,
                               Mitigation::BDC};
    Rng rng(20260806);
    for (int trial = 0; trial < 8; ++trial) {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = mits[trial % 5];
        cfg.seed = rng.next() % 1000000 + 1;
        const auto mix = adversaryMix(trial % 2 ? "mcf" : "bzip", "astar");

        cfg.fastForward = true;
        System fast(cfg, mix);
        fast.run(25000);

        cfg.fastForward = false;
        System slow(cfg, mix);
        slow.run(25000);

        ASSERT_EQ(summaryJson(fast, mix).dump(2),
                  summaryJson(slow, mix).dump(2))
            << "mitigation=" << mitigationName(cfg.mitigation)
            << " seed=" << cfg.seed;
    }
}

// ------------------------------------------------- JSON topologies

TEST(Topology, ParsesFullDocument)
{
    const TopologyConfig topo = parseTopology(R"({
        "cores": 2,
        "channels": 3,
        "mitigation": "reqc",
        "seed": 42,
        "workloads": ["mcf", "astar"],
        "shape_cores": [0],
        "cs_interval": 120,
        "fake_traffic": false,
        "randomize_timing": true,
        "fast_forward": false,
        "noc": {"latency": 8, "ingress_cap": 4, "egress_cap": 12}
    })");
    EXPECT_EQ(topo.system.numCores, 2u);
    EXPECT_EQ(topo.system.mc.org.channels, 3u);
    EXPECT_EQ(topo.system.mitigation, Mitigation::ReqC);
    EXPECT_EQ(topo.system.seed, 42u);
    EXPECT_EQ(topo.workloads,
              (std::vector<std::string>{"mcf", "astar"}));
    EXPECT_EQ(topo.system.shapeCore,
              (std::vector<bool>{true, false}));
    EXPECT_EQ(topo.system.csInterval, 120u);
    EXPECT_FALSE(topo.system.fakeTraffic);
    EXPECT_TRUE(topo.system.randomizeTiming);
    EXPECT_FALSE(topo.system.fastForward);
    EXPECT_EQ(topo.system.noc.latency, 8u);
    EXPECT_EQ(topo.system.noc.ingressCap, 4u);
    EXPECT_EQ(topo.system.noc.egressCap, 12u);
}

TEST(Topology, ReplicatedWorkloadFillsAllCores)
{
    const TopologyConfig topo =
        parseTopology(R"({"cores": 6, "workload": "astar"})");
    EXPECT_EQ(topo.workloads.size(), 6u);
    EXPECT_EQ(topo.system.numCores, 6u);
}

TEST(Topology, RejectsBadDocuments)
{
    using hard::ConfigError;
    EXPECT_THROW(parseTopology("{nope"), ConfigError);
    EXPECT_THROW(parseTopology(R"({"workload": "astar", "bogus": 1})"),
                 ConfigError);
    EXPECT_THROW(parseTopology(R"({"workload": "astar",
                                   "mitigation": "rot13"})"),
                 ConfigError);
    EXPECT_THROW(parseTopology(R"({"cores": 3,
                                   "workloads": ["mcf", "astar"]})"),
                 ConfigError);
    EXPECT_THROW(parseTopology(R"({"cores": 2})"), ConfigError);
    EXPECT_THROW(parseTopology(R"({"workloads": ["not-a-workload"]})"),
                 ConfigError);
    EXPECT_THROW(parseTopology(R"({"workload": "astar",
                                   "shape_cores": [9]})"),
                 ConfigError);
    EXPECT_THROW(loadTopology("/nonexistent/topo.json"), ConfigError);
}

TEST(Topology, EightCoresFourChannelsRunEndToEnd)
{
    const TopologyConfig topo = parseTopology(R"({
        "cores": 8,
        "channels": 4,
        "mitigation": "bdc",
        "seed": 3,
        "workload": "astar"
    })");
    System sys(topo);
    EXPECT_EQ(sys.numCores(), 8u);
    EXPECT_EQ(sys.memory().numChannels(), 4u);
    sys.run(30000);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_GT(sys.servedReads(i), 0u) << "core " << i;
        EXPECT_NE(sys.requestShaper(i), nullptr) << "core " << i;
        EXPECT_NE(sys.responseShaper(i), nullptr) << "core " << i;
    }
}

// ------------------------------------------------- golden invariance

/**
 * Fixed-seed stats-json output must stay byte-identical to the
 * goldens captured from the pre-kernel simulator (tests/golden/),
 * for every mitigation. Any accidental behavior change in the
 * component-graph machinery shows up here as a byte diff.
 */
TEST(GoldenStats, ByteIdenticalForAllMitigations)
{
    const std::pair<Mitigation, const char *> cases[] = {
        {Mitigation::None, "none"}, {Mitigation::CS, "cs"},
        {Mitigation::ReqC, "reqc"}, {Mitigation::RespC, "respc"},
        {Mitigation::BDC, "bdc"},
    };
    const std::vector<std::string> mix = {"mcf", "astar", "astar",
                                          "astar"};
    for (const auto &[m, name] : cases) {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = m;
        cfg.seed = 1;
        System sys(cfg, mix);
        runAndMeasure(sys, 60000, 5000);
        const std::string got = summaryJson(sys, mix).dump(2) + "\n";

        const std::string path = std::string(CAMO_GOLDEN_DIR) +
                                 "/stats_" + name + ".json";
        std::ifstream is(path);
        ASSERT_TRUE(is) << "missing golden: " << path;
        std::ostringstream want;
        want << is.rdbuf();
        ASSERT_EQ(got, want.str()) << "mitigation " << name;
    }
}

} // namespace
} // namespace camo::sim
