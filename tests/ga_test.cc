/** @file Tests for the genetic optimizer and MISE estimation. */

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/ga/genetic.h"
#include "src/ga/mise.h"

namespace camo::ga {
namespace {

GaConfig
smallCfg()
{
    GaConfig cfg;
    cfg.populationSize = 16;
    cfg.generations = 15;
    cfg.maxGeneValue = 32;
    cfg.minTotalCredits = 4;
    cfg.maxTotalCredits = 100;
    return cfg;
}

std::uint64_t
total(const Genome &g)
{
    return std::accumulate(g.begin(), g.end(), std::uint64_t{0});
}

// ----------------------------------------------------------- optimizer

TEST(Ga, PopulationRespectsBudgetInvariant)
{
    GeneticOptimizer opt(smallCfg(), 10, 3);
    for (const Genome &g : opt.population()) {
        ASSERT_EQ(g.size(), 10u);
        EXPECT_GE(total(g), smallCfg().minTotalCredits);
        EXPECT_LE(total(g), smallCfg().maxTotalCredits);
    }
}

TEST(Ga, BudgetHoldsAcrossGenerations)
{
    GeneticOptimizer opt(smallCfg(), 10, 5);
    for (int gen = 0; gen < 5; ++gen) {
        for (std::size_t i = 0; i < opt.population().size(); ++i)
            opt.setFitness(i, static_cast<double>(i));
        opt.nextGeneration();
        for (const Genome &g : opt.population()) {
            EXPECT_GE(total(g), smallCfg().minTotalCredits);
            EXPECT_LE(total(g), smallCfg().maxTotalCredits);
        }
    }
    EXPECT_EQ(opt.generation(), 5u);
}

TEST(Ga, SegmentedBudget)
{
    GaConfig cfg = smallCfg();
    cfg.budgetSegmentLen = 10;
    GeneticOptimizer opt(cfg, 20, 7);
    for (const Genome &g : opt.population()) {
        std::uint64_t a = 0, b = 0;
        for (std::size_t i = 0; i < 10; ++i) {
            a += g[i];
            b += g[10 + i];
        }
        EXPECT_LE(a, cfg.maxTotalCredits);
        EXPECT_LE(b, cfg.maxTotalCredits);
        EXPECT_GE(a, cfg.minTotalCredits);
        EXPECT_GE(b, cfg.minTotalCredits);
    }
}

TEST(Ga, OptimizeFindsHighSum)
{
    // Fitness = sum of genes: the optimum saturates the budget cap.
    GeneticOptimizer opt(smallCfg(), 10, 11);
    const Genome &best = opt.optimize([](const Genome &g) {
        return static_cast<double>(
            std::accumulate(g.begin(), g.end(), std::uint64_t{0}));
    });
    EXPECT_GE(total(best),
              static_cast<std::uint64_t>(
                  0.9 * smallCfg().maxTotalCredits));
}

TEST(Ga, OptimizeFindsTargetShape)
{
    // Fitness rewards matching a target vector: a harder landscape.
    const std::vector<std::uint32_t> target = {9, 1, 7, 2, 0,
                                               4, 0, 3, 1, 8};
    GaConfig cfg = smallCfg();
    cfg.generations = 40;
    cfg.populationSize = 30;
    GeneticOptimizer opt(cfg, 10, 13);
    const Genome &best = opt.optimize([&target](const Genome &g) {
        double err = 0;
        for (std::size_t i = 0; i < g.size(); ++i) {
            const double d = static_cast<double>(g[i]) - target[i];
            err += d * d;
        }
        return -err;
    });
    double err = 0;
    for (std::size_t i = 0; i < best.size(); ++i) {
        const double d = static_cast<double>(best[i]) - target[i];
        err += d * d;
    }
    EXPECT_LT(err, 60.0) << "GA should approach the target shape";
}

TEST(Ga, BestFitnessMonotone)
{
    GeneticOptimizer opt(smallCfg(), 10, 17);
    double prev_best = -1e300;
    for (int gen = 0; gen < 10; ++gen) {
        for (std::size_t i = 0; i < opt.population().size(); ++i) {
            // Arbitrary stable fitness.
            opt.setFitness(i, -static_cast<double>(
                                  total(opt.population()[i])));
        }
        EXPECT_GE(opt.bestFitness(), prev_best);
        prev_best = opt.bestFitness();
        opt.nextGeneration();
    }
}

TEST(Ga, SeedCandidateSurvivesViaElitism)
{
    GaConfig cfg = smallCfg();
    cfg.eliteCount = 2;
    GeneticOptimizer opt(cfg, 10, 19);
    Genome seed(10, 10); // total 100 == cap
    opt.seedCandidate(0, seed);
    // Fitness = total: the seed is optimal and must never be lost.
    for (int gen = 0; gen < 5; ++gen) {
        for (std::size_t i = 0; i < opt.population().size(); ++i)
            opt.setFitness(
                i, static_cast<double>(total(opt.population()[i])));
        opt.nextGeneration();
    }
    EXPECT_EQ(total(opt.best()), 100u);
}

TEST(GaDeathTest, UnevaluatedGenerationPanics)
{
    GeneticOptimizer opt(smallCfg(), 10, 23);
    opt.setFitness(0, 1.0);
    EXPECT_DEATH(opt.nextGeneration(), "never evaluated");
}

TEST(Ga, GenomeToBinConfig)
{
    const auto templ = shaper::BinConfig::desired();
    Genome g(20, 0);
    for (std::size_t i = 0; i < 20; ++i)
        g[i] = static_cast<std::uint32_t>(i + 1);
    const auto req = genomeToBinConfig(g, 0, templ);
    const auto resp = genomeToBinConfig(g, 10, templ);
    EXPECT_EQ(req.credits[0], 1u);
    EXPECT_EQ(resp.credits[0], 11u);
    EXPECT_EQ(req.edges, templ.edges);
    EXPECT_EQ(req.replenishPeriod, templ.replenishPeriod);
}

TEST(Ga, GenomeToBinConfigAllZeroRepaired)
{
    const auto templ = shaper::BinConfig::desired();
    Genome g(10, 0);
    const auto cfg = genomeToBinConfig(g, 0, templ);
    EXPECT_GE(cfg.totalCredits(), 1u) << "kept valid";
}

// ---------------------------------------------------------------- MISE

TEST(Mise, NoStallMeansNoSlowdown)
{
    MiseSample s{0.0, 0.01, 0.001};
    EXPECT_DOUBLE_EQ(miseSlowdown(s), 1.0);
}

TEST(Mise, FullStallScalesWithRateRatio)
{
    MiseSample s{1.0, 0.01, 0.005};
    EXPECT_DOUBLE_EQ(miseSlowdown(s), 2.0);
}

TEST(Mise, InterpolatesWithAlpha)
{
    MiseSample s{0.5, 0.02, 0.01};
    // (1 - 0.5) + 0.5 * 2 = 1.5
    EXPECT_DOUBLE_EQ(miseSlowdown(s), 1.5);
}

TEST(Mise, FasterSharedRateClampsToOne)
{
    MiseSample s{0.8, 0.01, 0.02};
    EXPECT_DOUBLE_EQ(miseSlowdown(s), 1.0);
}

TEST(Mise, ZeroRatesMeanNoMemorySlowdown)
{
    MiseSample s{0.9, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(miseSlowdown(s), 1.0);
}

TEST(Mise, AverageAcrossCores)
{
    MiseSample samples[2] = {{1.0, 0.02, 0.01}, {0.0, 0.02, 0.01}};
    EXPECT_DOUBLE_EQ(averageSlowdown(samples, 2), 1.5);
}

} // namespace
} // namespace camo::ga
