/** @file Tests for trace record/replay, the next-line prefetcher,
 *  DRAM energy accounting, and fairness metrics. */

#include <sstream>

#include <gtest/gtest.h>

#include "src/cache/hierarchy.h"
#include "src/dram/device.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/replay.h"
#include "src/trace/workloads.h"

namespace camo {
namespace {

// ------------------------------------------------------ record/replay

TEST(Replay, RoundTripPreservesItems)
{
    auto inner = trace::makeWorkload("gcc", 42, 0);
    trace::RecordingTrace recorder(std::move(inner), 500);
    for (Cycle t = 0; t < 500; ++t)
        recorder.next(t);
    ASSERT_EQ(recorder.items().size(), 500u);

    std::ostringstream os;
    recorder.save(os);
    std::istringstream is(os.str());
    auto replay = trace::ReplayTrace::fromStream(is);
    ASSERT_EQ(replay.size(), 500u);

    for (std::size_t i = 0; i < 500; ++i) {
        const auto &orig = recorder.items()[i];
        const auto got = replay.next(0);
        ASSERT_EQ(got.waitCycles, orig.waitCycles) << i;
        ASSERT_EQ(got.gapInstrs, orig.gapInstrs) << i;
        ASSERT_EQ(got.addr, orig.addr) << i;
        ASSERT_EQ(got.isWrite, orig.isWrite) << i;
    }
}

TEST(Replay, LoopsForever)
{
    std::vector<trace::TraceItem> items(3);
    items[0].addr = 0x40;
    trace::ReplayTrace replay(items);
    for (int i = 0; i < 10; ++i)
        replay.next(0);
    EXPECT_EQ(replay.loops(), 3u);
}

TEST(Replay, ParserHandlesCommentsAndKinds)
{
    std::istringstream is(
        "# header comment\n"
        "0 5 1a40 r\n"
        "100 0 2b80 w\n"
        "0 9 0 -\n");
    auto replay = trace::ReplayTrace::fromStream(is);
    ASSERT_EQ(replay.size(), 3u);
    auto a = replay.next(0);
    EXPECT_EQ(a.addr, 0x1a40u);
    EXPECT_FALSE(a.isWrite);
    auto b = replay.next(0);
    EXPECT_EQ(b.waitCycles, 100u);
    EXPECT_TRUE(b.isWrite);
    auto c = replay.next(0);
    EXPECT_FALSE(c.hasMemOp());
    EXPECT_EQ(c.gapInstrs, 9u);
}

TEST(ReplayDeathTest, BadInputIsFatal)
{
    std::istringstream bad("0 5 zz q\n");
    EXPECT_EXIT(trace::ReplayTrace::fromStream(bad),
                ::testing::ExitedWithCode(1), "trace parse error");
    std::istringstream empty("# nothing\n");
    EXPECT_EXIT(trace::ReplayTrace::fromStream(empty),
                ::testing::ExitedWithCode(1), "empty");
}

TEST(Replay, RecorderCapsMemory)
{
    auto inner = trace::makeWorkload("gcc", 1, 0);
    trace::RecordingTrace recorder(std::move(inner), 10);
    for (Cycle t = 0; t < 100; ++t)
        recorder.next(t);
    EXPECT_EQ(recorder.items().size(), 10u);
}

// --------------------------------------------------------- prefetcher

cache::HierarchyConfig
prefetchCfg()
{
    cache::HierarchyConfig cfg;
    cfg.l1 = {1024, 2, 64, 4};
    cfg.l2 = {4096, 4, 64, 12};
    cfg.mshrs = 4;
    cfg.nextLinePrefetch = true;
    return cfg;
}

TEST(Prefetch, MissIssuesNextLine)
{
    cache::CacheHierarchy h(0, prefetchCfg());
    h.access(0x10000, false, 1);
    const auto out = h.popOutgoing();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x10000u);
    EXPECT_EQ(out[1].addr, 0x10040u);
    EXPECT_EQ(h.mshrsInUse(), 2u);
    EXPECT_EQ(h.stats().counter("prefetches.issued"), 1u);
}

TEST(Prefetch, PrefetchedLineHitsAfterFill)
{
    cache::CacheHierarchy h(0, prefetchCfg());
    h.access(0x10000, false, 1);
    h.popOutgoing();
    h.onFill(0x10000, 10);
    h.onFill(0x10040, 12); // the prefetch
    EXPECT_EQ(h.access(0x10040, false, 20).kind,
              cache::AccessKind::L1Hit);
}

TEST(Prefetch, DemandCoalescesIntoInflightPrefetch)
{
    cache::CacheHierarchy h(0, prefetchCfg());
    h.access(0x10000, false, 1);
    h.popOutgoing();
    // The next line is in flight as a prefetch: a demand access
    // coalesces instead of issuing again.
    EXPECT_EQ(h.access(0x10040, false, 2).kind,
              cache::AccessKind::Coalesced);
    EXPECT_TRUE(h.popOutgoing().empty());
}

TEST(Prefetch, RespectsMshrBudget)
{
    cache::CacheHierarchy h(0, prefetchCfg());
    // 3 demand misses: the 4-entry MSHR file cannot also hold 3
    // prefetches; prefetching must yield to demand.
    h.access(0x10000, false, 1);
    h.access(0x20000, false, 1);
    h.access(0x30000, false, 1);
    EXPECT_LE(h.mshrsInUse(), 4u);
}

TEST(Prefetch, StreamingWorkloadBenefits)
{
    sim::SystemConfig off = sim::paperConfig();
    off.numCores = 1;
    sim::SystemConfig on = off;
    on.cache.nextLinePrefetch = true;
    // h264ref: sequential but not MSHR-saturated, so prefetches get
    // slots (a fully saturated stream like libqt has no spare MSHRs
    // and gains little).
    const auto m_off = sim::runConfig(off, {"h264ref"}, 200000, 20000);
    const auto m_on = sim::runConfig(on, {"h264ref"}, 200000, 20000);
    EXPECT_GT(m_on.ipc[0], 1.03 * m_off.ipc[0])
        << "sequential streaming should gain from next-line prefetch";
}

// -------------------------------------------------------- DRAM energy

TEST(Energy, CountsFollowCommands)
{
    dram::DramOrganization org;
    dram::DramTiming timing;
    dram::DramDevice dev(org, timing);
    const dram::DramAddress da{0, 0, 0, 3, 0};
    std::uint64_t t = 0;
    while (!dev.canIssue(dram::Cmd::ACT, da, t))
        ++t;
    dev.issue(dram::Cmd::ACT, da, t);
    t += timing.tRCD;
    while (!dev.canIssue(dram::Cmd::RD, da, t))
        ++t;
    dev.issue(dram::Cmd::RD, da, t);

    const auto &e = dev.energy();
    EXPECT_EQ(e.actPairs(), 1u);
    EXPECT_EQ(e.reads(), 1u);
    EXPECT_EQ(e.writes(), 0u);
    EXPECT_DOUBLE_EQ(e.dynamicPj(), e.model().actPrePj +
                                        e.model().readBurstPj);
}

TEST(Energy, BackgroundScalesWithTimeAndRanks)
{
    dram::EnergyCounter e;
    EXPECT_DOUBLE_EQ(e.backgroundPj(1000, 2),
                     2000.0 * e.model().backgroundPjPerCycle);
    EXPECT_DOUBLE_EQ(e.totalPj(0, 1), e.dynamicPj());
}

TEST(Energy, FakeTrafficCostsEnergy)
{
    auto dynamic_pj = [](bool fakes) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.fakeTraffic = fakes;
        sim::System s(cfg, sim::adversaryMix("sjeng", "sjeng"));
        s.run(100000);
        return s.memory().channel(0).device().energy().dynamicPj();
    };
    EXPECT_GT(dynamic_pj(true), 1.3 * dynamic_pj(false))
        << "idle workloads + fakes -> substantial fake DRAM energy";
}

// ---------------------------------------------------- fairness metrics

TEST(Fairness, MaxAndHarmonicSummaries)
{
    sim::RunMetrics base, test;
    base.ipc = {1.0, 1.0, 1.0, 1.0};
    test.ipc = {1.0, 0.5, 0.25, 1.0}; // slowdowns 1, 2, 4, 1
    EXPECT_DOUBLE_EQ(sim::maxSlowdownVs(base, test), 4.0);
    EXPECT_DOUBLE_EQ(sim::harmonicSpeedupVs(base, test), 4.0 / 8.0);
}

TEST(Fairness, IdenticalRunsAreNeutral)
{
    sim::RunMetrics base;
    base.ipc = {0.7, 1.3};
    EXPECT_DOUBLE_EQ(sim::maxSlowdownVs(base, base), 1.0);
    EXPECT_DOUBLE_EQ(sim::harmonicSpeedupVs(base, base), 1.0);
}

} // namespace
} // namespace camo
