/**
 * @file
 * Online leakage monitor tests. The central claim: the monitor's
 * incremental pairing is *the same algorithm* as the offline
 * security::computeShapingMi, so its cumulative result equals the
 * offline number exactly — not approximately — on the same event
 * logs. Plus: windowed MI separates unshaped covert traffic from
 * shaped traffic, alerts fire deterministically (same cycle, every
 * run), the history is identical under fast-forward, and the
 * interval series grows the leakmon column.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/hard/error.h"
#include "src/obs/leakmon.h"
#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kCycles = 200000;
constexpr const char *kSender = "covert:5A5A5A5A";

sim::SystemConfig
covertConfig(bool shaped)
{
    sim::SystemConfig cfg = sim::paperConfig();
    if (shaped) {
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.shapeCore = {true, false, false, false};
        // Short replenishment window (as in bench/fig14_15_covert):
        // the fake-traffic takeover lag after a demand drop is one
        // window, so keep it well below the sender's pulse length.
        cfg.reqBins = shaper::BinConfig::desired(8, 1.5, 2500);
    }
    return cfg;
}

std::unique_ptr<sim::System>
runCovert(bool shaped, const obs::LeakMonitorConfig &lc,
          bool fast_forward = true)
{
    sim::SystemConfig cfg = covertConfig(shaped);
    cfg.fastForward = fast_forward;
    auto system = std::make_unique<sim::System>(
        cfg,
        std::vector<std::string>{kSender, "probe", "sjeng", "sjeng"});
    system->setDiagnosticStream(nullptr);
    system->enableLeakMonitor(lc);
    system->run(kCycles);
    return system;
}

} // namespace

TEST(LeakMonitor, CumulativeResultEqualsOfflineMiExactly)
{
    for (const bool shaped : {false, true}) {
        SCOPED_TRACE(shaped ? "shaped" : "unshaped");
        obs::LeakMonitorConfig lc;
        auto system = runCovert(shaped, lc);

        obs::LeakMonitor *mon = system->leakMonitor();
        ASSERT_NE(mon, nullptr);
        const security::ShapingMiResult online =
            mon->cumulativeResult();
        const security::ShapingMiResult offline =
            security::computeShapingMi(
                system->intrinsicMonitor(0).events(),
                system->busMonitor(0).events(),
                security::makeMiQuantizer(lc.quantBins, lc.quantBase,
                                          lc.quantRatio));

        // Same pairing, same joint, same estimator: bit-identical.
        EXPECT_EQ(online.miBits, offline.miBits);
        EXPECT_EQ(online.miBitsRaw, offline.miBitsRaw);
        EXPECT_EQ(online.intrinsicEntropy, offline.intrinsicEntropy);
        EXPECT_EQ(online.shapedEntropy, offline.shapedEntropy);
        EXPECT_EQ(online.pairs, offline.pairs);
        EXPECT_EQ(online.fakeEvents, offline.fakeEvents);
        EXPECT_GT(online.pairs, 100u);
    }
}

TEST(LeakMonitor, ShapingCollapsesMi)
{
    obs::LeakMonitorConfig lc;
    auto unshaped = runCovert(false, lc);
    auto shaped = runCovert(true, lc);

    // Cumulative MI is the stable comparison (windowed estimates on
    // the shaped side have few pairs per window and a high variance).
    const double mi_unshaped =
        unshaped->leakMonitor()->cumulativeResult().miBits;
    const double mi_shaped =
        shaped->leakMonitor()->cumulativeResult().miBits;
    EXPECT_GT(mi_unshaped, 0.5)
        << "unshaped covert sender must show substantial MI";
    EXPECT_LT(mi_shaped, mi_unshaped / 2.0)
        << "request shaping must collapse the MI";

    const double peak_unshaped =
        unshaped->leakMonitor()->peakWindowMiBits();
    EXPECT_GT(peak_unshaped, 0.5)
        << "the windowed series must expose the covert pulses too";
}

TEST(LeakMonitor, AlertFiresDeterministicallyAtThreshold)
{
    // Calibrate monitor-only, then alert at half the observed peak.
    obs::LeakMonitorConfig lc;
    auto calib = runCovert(false, lc);
    const double peak = calib->leakMonitor()->peakWindowMiBits();
    ASSERT_GT(peak, 0.0);

    lc.alertThresholdBits = peak / 2.0;
    try {
        runCovert(false, lc);
        FAIL() << "expected a LeakageAlert";
    } catch (const hard::LeakageAlert &e) {
        EXPECT_FALSE(e.diagnostic().empty())
            << "alert must carry the structured diagnostic dump";
        EXPECT_NE(std::string(e.what()).find("leak"),
                  std::string::npos);
    }
    // And again: the alert is a deterministic property of the run.
    EXPECT_THROW(runCovert(false, lc), hard::LeakageAlert);
}

TEST(LeakMonitor, AlertCycleIdenticalAcrossRepeatsAndFastForward)
{
    obs::LeakMonitorConfig lc;
    auto calib = runCovert(false, lc);
    lc.alertThresholdBits =
        calib->leakMonitor()->peakWindowMiBits() / 2.0;

    // Scan the monitor-only window history for the cycle at which an
    // alerting monitor would have fired (the previous test pins that
    // the alerting configuration actually throws).
    auto alertAtOf = [&](bool ff) -> Cycle {
        sim::SystemConfig cfg = covertConfig(false);
        cfg.fastForward = ff;
        obs::LeakMonitorConfig monitor_only = lc;
        monitor_only.alertThresholdBits =
            std::numeric_limits<double>::infinity();
        sim::System system(cfg, {kSender, "probe", "sjeng", "sjeng"});
        system.enableLeakMonitor(monitor_only);
        system.run(kCycles);
        const auto &hist = system.leakMonitor()->history();
        std::uint32_t streak = 0;
        for (const auto &w : hist) {
            streak = (w.miBits > lc.alertThresholdBits &&
                      w.pairs >= lc.minWindowPairs)
                         ? streak + 1
                         : 0;
            if (streak >= lc.consecutiveBreaches)
                return w.at;
        }
        return 0;
    };

    const Cycle ff_alert = alertAtOf(true);
    const Cycle plain_alert = alertAtOf(false);
    EXPECT_GT(ff_alert, 0u);
    EXPECT_EQ(ff_alert, plain_alert)
        << "alert cycle must not depend on fast-forward";
}

TEST(LeakMonitor, HistoryIdenticalUnderFastForward)
{
    obs::LeakMonitorConfig lc;
    auto fast = runCovert(false, lc, true);
    auto plain = runCovert(false, lc, false);

    const auto &hf = fast->leakMonitor()->history();
    const auto &hp = plain->leakMonitor()->history();
    ASSERT_EQ(hf.size(), hp.size());
    ASSERT_GT(hf.size(), 5u);
    for (std::size_t i = 0; i < hf.size(); ++i) {
        EXPECT_EQ(hf[i].at, hp[i].at);
        EXPECT_EQ(hf[i].miBits, hp[i].miBits);
        EXPECT_EQ(hf[i].pairs, hp[i].pairs);
    }
}

TEST(LeakMonitor, IntervalSeriesGrowsLeakmonColumn)
{
    sim::SystemConfig cfg = covertConfig(false);
    sim::System system(cfg, {kSender, "probe", "sjeng", "sjeng"});
    obs::LeakMonitorConfig lc;
    system.enableLeakMonitor(lc);
    system.enableIntervalStats(20000);
    system.run(kCycles);

    const std::string csv = system.intervalStats()->toCsv();
    EXPECT_NE(csv.find("leakmon.window_mi_bits"), std::string::npos);
}

TEST(LeakMonitor, RejectsInvalidConfig)
{
    sim::SystemConfig cfg = covertConfig(false);
    sim::System system(cfg, {kSender, "probe", "sjeng", "sjeng"});

    obs::LeakMonitorConfig bad_core;
    bad_core.core = 99;
    EXPECT_THROW(system.enableLeakMonitor(bad_core),
                 hard::ConfigError);

    obs::LeakMonitorConfig bad_window;
    bad_window.windowCycles = 0;
    EXPECT_THROW(system.enableLeakMonitor(bad_window),
                 hard::ConfigError);

    obs::LeakMonitorConfig ok;
    system.enableLeakMonitor(ok);
    EXPECT_THROW(system.enableLeakMonitor(ok), hard::ConfigError)
        << "double-enable must be rejected";
}
