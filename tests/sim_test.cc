/** @file Integration tests: the assembled system reproduces the
 *  paper's mechanisms end to end. */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hard/error.h"
#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo::sim {
namespace {

// ------------------------------------------------------- construction

TEST(System, ShapersMatchMitigation)
{
    const auto mix = adversaryMix("astar", "astar");
    {
        SystemConfig cfg = paperConfig();
        System s(cfg, mix);
        EXPECT_EQ(s.requestShaper(0), nullptr);
        EXPECT_EQ(s.responseShaper(0), nullptr);
    }
    {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = Mitigation::ReqC;
        System s(cfg, mix);
        EXPECT_NE(s.requestShaper(0), nullptr);
        EXPECT_EQ(s.responseShaper(0), nullptr);
    }
    {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = Mitigation::RespC;
        System s(cfg, mix);
        EXPECT_EQ(s.requestShaper(0), nullptr);
        EXPECT_NE(s.responseShaper(0), nullptr);
    }
    {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = Mitigation::BDC;
        System s(cfg, mix);
        EXPECT_NE(s.requestShaper(0), nullptr);
        EXPECT_NE(s.responseShaper(0), nullptr);
    }
}

TEST(System, ShapeCoreMaskRespected)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::ReqC;
    cfg.shapeCore = {true, false, true, false};
    System s(cfg, adversaryMix("astar", "astar"));
    EXPECT_NE(s.requestShaper(0), nullptr);
    EXPECT_EQ(s.requestShaper(1), nullptr);
    EXPECT_NE(s.requestShaper(2), nullptr);
    EXPECT_EQ(s.requestShaper(3), nullptr);
}

TEST(System, SchedulerFollowsMitigation)
{
    const auto mix = adversaryMix("astar", "astar");
    {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = Mitigation::TP;
        System s(cfg, mix);
        EXPECT_STREQ(s.memory().channel(0).scheduler().name(), "TP");
    }
    {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = Mitigation::FS;
        System s(cfg, mix);
        EXPECT_STREQ(s.memory().channel(0).scheduler().name(), "FS");
        EXPECT_TRUE(s.memory().channel(0).config().bankPartitioning);
    }
}

TEST(System, WorkloadCountMustMatchCores)
{
    SystemConfig cfg = paperConfig();
    EXPECT_THROW(System(cfg, {"astar"}), hard::ConfigError);
}

// ------------------------------------------------------- determinism

TEST(System, DeterministicForEqualSeeds)
{
    const auto mix = adversaryMix("mcf", "astar");
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::BDC;
    cfg.seed = 77;
    const auto a = runConfig(cfg, mix, 30000);
    const auto b = runConfig(cfg, mix, 30000);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(a.retired[i], b.retired[i]) << "core " << i;
        EXPECT_EQ(a.servedReads[i], b.servedReads[i]) << "core " << i;
    }
}

TEST(System, DifferentSeedsDiffer)
{
    const auto mix = adversaryMix("mcf", "astar");
    SystemConfig cfg = paperConfig();
    cfg.seed = 1;
    const auto a = runConfig(cfg, mix, 30000);
    cfg.seed = 2;
    const auto b = runConfig(cfg, mix, 30000);
    bool any_diff = false;
    for (std::uint32_t i = 0; i < 4; ++i)
        any_diff = any_diff || a.retired[i] != b.retired[i];
    EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------- mechanics

TEST(System, MemoryTrafficFlows)
{
    SystemConfig cfg = paperConfig();
    System s(cfg, adversaryMix("mcf", "mcf"));
    s.run(50000);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_GT(s.servedReads(i), 0u) << "core " << i;
        EXPECT_GT(s.avgReadLatency(i), 20.0) << "core " << i;
        EXPECT_GT(s.intrinsicMonitor(i).count(), 0u);
        EXPECT_GT(s.busMonitor(i).count(), 0u);
    }
}

TEST(System, FakeResponsesNeverCountAsServed)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::BDC;
    System s(cfg, adversaryMix("sjeng", "sjeng")); // light demand
    s.run(100000);
    // Fakes flow (sjeng leaves most credits unused)...
    std::uint64_t fakes = 0;
    for (std::uint32_t i = 0; i < 4; ++i)
        fakes += s.requestShaper(i)->bins().fakeIssued() +
                 s.responseShaper(i)->bins().fakeIssued();
    EXPECT_GT(fakes, 100u);
    // ...but served reads and the cores' progress only count reals:
    // every served read must have a real outstanding miss behind it.
    for (std::uint32_t i = 0; i < 4; ++i) {
        // Monitor count() is gaps (= events - 1).
        EXPECT_LE(s.servedReads(i),
                  s.intrinsicMonitor(i).count() + 1);
    }
    EXPECT_GT(s.stats().counter("responses.fake.dropped"), 0u);
}

TEST(System, LatencyLogOnlyWhenEnabled)
{
    SystemConfig cfg = paperConfig();
    System off(cfg, adversaryMix("mcf", "mcf"));
    off.run(20000);
    EXPECT_TRUE(off.latencyLog(0).empty());

    cfg.recordLatencies = true;
    System on(cfg, adversaryMix("mcf", "mcf"));
    on.run(20000);
    EXPECT_FALSE(on.latencyLog(0).empty());
    // Log is time-ordered.
    const auto &log = on.latencyLog(0);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_GE(log[i].at, log[i - 1].at);
}

TEST(System, EpochCountersClear)
{
    SystemConfig cfg = paperConfig();
    System s(cfg, adversaryMix("mcf", "mcf"));
    s.run(30000);
    EXPECT_GT(s.servedReads(0), 0u);
    s.clearEpochCounters();
    EXPECT_EQ(s.servedReads(0), 0u);
    EXPECT_EQ(s.coreAt(0).retired(), 0u);
}

TEST(System, ReconfigureShapersTakesEffect)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::ReqC;
    System s(cfg, adversaryMix("mcf", "mcf"));
    auto open = shaper::BinConfig::desired();
    open.credits.assign(open.numBins(), 500);
    s.reconfigureShapers(open, open);
    EXPECT_EQ(s.requestShaper(0)->bins().config().credits[0], 500u);
}

// --------------------------------------------- end-to-end experiments

TEST(Integration, ReqCShapesIntoDesired)
{
    // Mini Figure 11: shaped output matches DESIRED for a heavy app.
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::ReqC;
    cfg.numCores = 1;
    System s(cfg, {"mcf"});
    s.run(200000);

    const auto desired = shaper::BinConfig::desired();
    Histogram target(desired.edges);
    for (std::size_t i = 0; i < desired.numBins(); ++i)
        target.add(desired.edges[i], desired.credits[i]);
    const double tvd =
        s.requestShaper(0)->postMonitor().histogram()
            .totalVariationDistance(target);
    EXPECT_LT(tvd, 0.1);
}

TEST(Integration, ShapingCutsMutualInformation)
{
    // Mini SIV-B2: ReqC cuts the gap MI by >= 10x vs no shaping.
    const auto mix = adversaryMix("mcf", "bzip");
    const auto quantizer = security::makeMiQuantizer(24, 8, 1.6);

    SystemConfig base = paperConfig();
    base.recordTraffic = true;
    System unshaped(base, mix);
    unshaped.run(400000);
    const auto h = security::computeUnshapedLeakage(
        unshaped.intrinsicMonitor(1).events(), quantizer);

    SystemConfig shaped_cfg = paperConfig();
    shaped_cfg.mitigation = Mitigation::ReqC;
    shaped_cfg.recordTraffic = true;
    shaped_cfg.shapeCore = {false, true, true, true};
    System shaped(shaped_cfg, mix);
    shaped.run(1000000); // enough 20k-cycle windows for a stable MI
    // Cross-run pairing: X is the unshaped run's intrinsic timing,
    // Y is the shaped run's observable (paper SIV-B2 methodology).
    auto *sh = shaped.requestShaper(1);
    const auto mi = security::computeShapingMi(
        unshaped.intrinsicMonitor(1).events(),
        sh->postMonitor().events(), quantizer);

    EXPECT_GT(h.miBits, 1.0);
    // Gap-level MI drops several-fold (residual: phase transitions
    // within one replenishment window, see EXPERIMENTS.md)...
    EXPECT_LT(mi.miBits, h.miBits / 3.0);
    // ...and what the bus observer's window counts say about the
    // program's *natural* (unshaped-run) activity is essentially
    // nothing (cross-run, the paper's operational claim).
    const auto windowed = security::computeWindowedCrossMiCounts(
        unshaped.intrinsicMonitor(1).events(),
        shaped.busMonitor(1).events(), 20000, 4);
    EXPECT_LT(windowed.miBits, 0.1);
}

TEST(Integration, RespCFlattensAdversaryLatencyDifference)
{
    // Mini Figure 9: per-request latency drift between victim mixes
    // shrinks by an order of magnitude under RespC.
    auto run = [](const char *victim, bool respc,
                  const shaper::BinConfig *bins) {
        SystemConfig cfg = paperConfig();
        cfg.recordLatencies = true;
        if (respc) {
            cfg.mitigation = Mitigation::RespC;
            cfg.shapeCore = {true, false, false, false};
            cfg.respBins = *bins;
        }
        System s(cfg, adversaryMix("bzip", victim));
        s.run(400000);
        return s.latencyLog(0);
    };
    auto drift = [](const std::vector<security::LatencySample> &a,
                    const std::vector<security::LatencySample> &b) {
        const std::size_t n = std::min(a.size(), b.size());
        long long acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc += static_cast<long long>(b[i].latency) -
                   static_cast<long long>(a[i].latency);
        return n ? std::abs(static_cast<double>(acc) / n) : 0.0;
    };

    const double unprotected =
        drift(run("astar", false, nullptr), run("mcf", false, nullptr));

    // Program the slower (mcf) mix's response distribution.
    SystemConfig probe_cfg = paperConfig();
    probe_cfg.recordTraffic = true;
    System probe(probe_cfg, adversaryMix("bzip", "mcf"));
    probe.run(200000);
    const auto bins = binsFromMonitor(probe.responseMonitor(0), 200000,
                                      10000, 1.0);

    const double protected_drift =
        drift(run("astar", true, &bins), run("mcf", true, &bins));

    EXPECT_GT(unprotected, 50.0);
    EXPECT_LT(protected_drift, unprotected / 4.0);
}

TEST(Integration, TpIsolatesDomains)
{
    // Under TP, changing the co-runner barely moves the adversary's
    // latency; under FR-FCFS it moves a lot.
    auto avg_latency = [](Mitigation mit, const char *victim) {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = mit;
        System s(cfg, adversaryMix("bzip", victim));
        s.run(300000);
        return s.avgReadLatency(0);
    };
    const double fr_delta =
        std::abs(avg_latency(Mitigation::None, "mcf") -
                 avg_latency(Mitigation::None, "sjeng"));
    const double tp_delta =
        std::abs(avg_latency(Mitigation::TP, "mcf") -
                 avg_latency(Mitigation::TP, "sjeng"));
    EXPECT_LT(tp_delta, fr_delta / 2.0);
}

TEST(Integration, OnlineGaImprovesOverGenerations)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::BDC;
    ga::GaConfig ga_cfg;
    ga_cfg.generations = 4;
    ga_cfg.populationSize = 6;
    const auto result =
        runOnlineGa(cfg, adversaryMix("bzip", "astar"), ga_cfg, 10000);
    ASSERT_EQ(result.generationBest.size(), 4u);
    EXPECT_GE(result.bestFitness, result.generationBest.front());
    result.reqBins.validate();
    result.respBins.validate();
    EXPECT_LE(result.reqBins.totalCredits(),
              ga::GaConfig{}.maxTotalCredits);
}

TEST(Integration, RunMetricsHelpers)
{
    const auto mix = adversaryMix("astar", "astar");
    SystemConfig cfg = paperConfig();
    const auto base = runConfig(cfg, mix, 30000, 3000);
    cfg.mitigation = Mitigation::TP;
    const auto tp = runConfig(cfg, mix, 30000, 3000);
    const auto slow = slowdownVs(base, tp);
    ASSERT_EQ(slow.size(), 4u);
    for (const double s : slow)
        EXPECT_GT(s, 0.8) << "TP should not speed things up";
    EXPECT_GT(base.throughput(), tp.throughput());
}

TEST(Integration, BinsFromMonitorMatchesRate)
{
    SystemConfig cfg = paperConfig();
    cfg.recordTraffic = true;
    System s(cfg, adversaryMix("mcf", "astar"));
    s.run(100000);
    const auto bins =
        binsFromMonitor(s.responseMonitor(0), 100000, 10000, 1.0);
    const double measured_rate =
        static_cast<double>(s.responseMonitor(0).count()) / 100000.0;
    EXPECT_NEAR(bins.maxRate(), measured_rate,
                0.3 * measured_rate + 0.001);
}

} // namespace
} // namespace camo::sim
