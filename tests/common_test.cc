/** @file Unit and property tests for src/common. */

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace camo {
namespace {

// -------------------------------------------------------------- Arena

TEST(Arena, BumpAllocatesAndReusesFreedBlocks)
{
    Arena arena;
    void *a = arena.allocate(32, 8);
    void *b = arena.allocate(32, 8);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.allocCalls(), 2u);
    EXPECT_EQ(arena.bytesRequested(), 64u);
    EXPECT_EQ(arena.freeListHits(), 0u);

    // A freed block of the same size class is handed back out.
    arena.deallocate(a, 32, 8);
    EXPECT_EQ(arena.freeCalls(), 1u);
    void *c = arena.allocate(32, 8);
    EXPECT_EQ(c, a);
    EXPECT_EQ(arena.freeListHits(), 1u);
    arena.deallocate(b, 32, 8);
    arena.deallocate(c, 32, 8);
}

TEST(Arena, OversizeAndOveralignedRequestsFallBackToHeap)
{
    Arena arena;
    void *big = arena.allocate(Arena::kMaxPooled + 1, 8);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(arena.heapFallbacks(), 1u);
    arena.deallocate(big, Arena::kMaxPooled + 1, 8);

    void *aligned = arena.allocate(64, 64);
    ASSERT_NE(aligned, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 64, 0u);
    EXPECT_EQ(arena.heapFallbacks(), 2u);
    arena.deallocate(aligned, 64, 64);
    // Heap-fallback blocks never enter the free lists.
    EXPECT_EQ(arena.freeListHits(), 0u);
}

TEST(Arena, GrowsChunksAndResetRewindsThem)
{
    // The smallest legal chunk still holds one max-pooled block.
    Arena arena(/*chunk_bytes=*/Arena::kMaxPooled);
    std::vector<void *> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.push_back(arena.allocate(64, 8));
    EXPECT_GT(arena.chunkCount(), 1u);
    const std::uint64_t reserved = arena.bytesReserved();
    EXPECT_GE(reserved, 100u * 64u);

    // reset() keeps the chunks (warm pages) but rewinds the cursor:
    // the same memory serves the next generation of allocations.
    arena.reset();
    EXPECT_EQ(arena.resets(), 1u);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    void *again = arena.allocate(64, 8);
    EXPECT_EQ(again, blocks.front());
}

TEST(Arena, ContainersAreUsableAndNullArenaDegradesToHeap)
{
    Arena arena;
    {
        ArenaMap<int, int> m{ArenaAllocator<std::pair<const int, int>>(
            &arena)};
        ArenaDeque<int> d{ArenaAllocator<int>(&arena)};
        for (int i = 0; i < 100; ++i) {
            m[i] = i * i;
            d.push_back(i);
        }
        EXPECT_EQ(m.at(9), 81);
        EXPECT_EQ(d.size(), 100u);
        EXPECT_GT(arena.allocCalls(), 0u);
    }
    // All nodes returned before the arena dies.
    EXPECT_EQ(arena.allocCalls(), arena.freeCalls());

    ArenaMap<int, int> heap_backed; // null arena
    heap_backed[1] = 2;
    EXPECT_EQ(heap_backed.at(1), 2);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL,
                                1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in [5,8] should appear";
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, BurstLengthBounds)
{
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const auto len = rng.burstLength(0.7, 16);
        ASSERT_GE(len, 1u);
        ASSERT_LE(len, 16u);
    }
    // p=0 always yields length 1.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.burstLength(0.0, 16), 1u);
}

// ---------------------------------------------------------- Histogram

TEST(Histogram, BinOfRespectsEdges)
{
    Histogram h({0, 10, 100, 1000});
    EXPECT_EQ(h.binOf(0), 0u);
    EXPECT_EQ(h.binOf(9), 0u);
    EXPECT_EQ(h.binOf(10), 1u);
    EXPECT_EQ(h.binOf(99), 1u);
    EXPECT_EQ(h.binOf(100), 2u);
    EXPECT_EQ(h.binOf(1000), 3u);
    EXPECT_EQ(h.binOf(~0ULL), 3u);
}

TEST(Histogram, CountsAndPmf)
{
    Histogram h({0, 10});
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(50);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.count(1), 1u);
    const auto p = h.pmf();
    EXPECT_DOUBLE_EQ(p[0], 0.75);
    EXPECT_DOUBLE_EQ(p[1], 0.25);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h({0, 10});
    h.add(5, 7);
    EXPECT_EQ(h.count(0), 7u);
    EXPECT_EQ(h.totalCount(), 7u);
}

TEST(Histogram, EntropyUniformIsLogN)
{
    Histogram h({0, 1, 2, 3});
    for (std::uint64_t v : {0u, 1u, 2u, 3u})
        h.add(v, 100);
    EXPECT_NEAR(h.entropyBits(), 2.0, 1e-9);
}

TEST(Histogram, EntropyDegenerateIsZero)
{
    Histogram h({0, 1});
    h.add(0, 1000);
    EXPECT_DOUBLE_EQ(h.entropyBits(), 0.0);
    Histogram empty({0, 1});
    EXPECT_DOUBLE_EQ(empty.entropyBits(), 0.0);
}

TEST(Histogram, TotalVariationDistance)
{
    Histogram a({0, 1}), b({0, 1});
    a.add(0, 100);
    b.add(1, 100);
    EXPECT_DOUBLE_EQ(a.totalVariationDistance(b), 1.0);
    EXPECT_DOUBLE_EQ(a.totalVariationDistance(a), 0.0);
}

TEST(Histogram, GeometricEdgesStrictlyIncrease)
{
    const auto h = Histogram::makeGeometric(16, 2, 1.3);
    ASSERT_EQ(h.numBins(), 16u);
    for (std::size_t i = 1; i < h.numBins(); ++i)
        ASSERT_GT(h.lowerEdge(i), h.lowerEdge(i - 1));
    EXPECT_EQ(h.lowerEdge(0), 0u);
}

TEST(Histogram, LinearEdges)
{
    const auto h = Histogram::makeLinear(5, 10);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(h.lowerEdge(i), i * 10);
}

TEST(Histogram, ClearRetainsEdges)
{
    Histogram h({0, 5});
    h.add(7);
    h.clear();
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.binOf(7), 1u);
}

TEST(Histogram, AsciiRendersEveryBin)
{
    Histogram h({0, 10, 20});
    h.add(1, 10);
    const auto s = h.toAscii(10);
    EXPECT_NE(s.find("[0, 10)"), std::string::npos);
    EXPECT_NE(s.find("inf)"), std::string::npos);
}

/** Property: pmf always sums to 1 (or 0 when empty). */
class HistogramPmfProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HistogramPmfProperty, PmfSumsToOne)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t nbins = 2 + rng.below(20);
    auto h = Histogram::makeGeometric(nbins, 1 + rng.below(10),
                                      1.1 + rng.uniform());
    const std::size_t samples = 1 + rng.below(500);
    for (std::size_t i = 0; i < samples; ++i)
        h.add(rng.below(100000));
    double sum = 0;
    for (const double p : h.pmf())
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(h.totalCount(), samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPmfProperty,
                         ::testing::Range(0, 12));

// -------------------------------------------------------------- Stats

TEST(Stats, CountersAccumulate)
{
    StatGroup g;
    g.inc("a");
    g.inc("a", 4);
    EXPECT_EQ(g.counter("a"), 5u);
    EXPECT_EQ(g.counter("missing"), 0u);
    EXPECT_TRUE(g.hasCounter("a"));
    EXPECT_FALSE(g.hasCounter("missing"));
}

TEST(Stats, ScalarTracksMinMaxMean)
{
    StatGroup g;
    g.sample("x", 1.0);
    g.sample("x", 3.0);
    g.sample("x", 2.0);
    const Scalar &s = g.scalar("x");
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Stats, EmptyScalarIsZero)
{
    StatGroup g;
    const Scalar &s = g.scalar("nope");
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, ClearResets)
{
    StatGroup g;
    g.inc("a");
    g.sample("x", 1.0);
    g.clear();
    EXPECT_EQ(g.counter("a"), 0u);
    EXPECT_EQ(g.scalar("x").count(), 0u);
}

TEST(Stats, DumpContainsNames)
{
    StatGroup g;
    g.inc("reads", 3);
    g.sample("lat", 5.5);
    const auto s = g.dump("mc.");
    EXPECT_NE(s.find("mc.reads = 3"), std::string::npos);
    EXPECT_NE(s.find("mc.lat"), std::string::npos);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0}), 3.0, 1e-12);
}

TEST(StatsDeathTest, GeomeanReportsOffendingValue)
{
    EXPECT_DEATH(geomean({2.0, -1.5}), "-1.5");
    EXPECT_DEATH(geomean({0.0}), "positive");
}

TEST(Stats, ScalarWelfordVariance)
{
    Scalar s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    // Textbook population variance of this set is 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Stats, ScalarVarianceNeedsTwoSamples)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.sample(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, ScalarClearResetsEverything)
{
    Scalar s;
    s.sample(1.0);
    s.sample(9.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    // And it samples correctly again afterwards.
    s.sample(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(Stats, MissingNameLookupsAreInert)
{
    StatGroup g;
    // Lookups for unregistered names return zero values and must not
    // create entries as a side effect.
    EXPECT_EQ(g.counter("ghost"), 0u);
    EXPECT_EQ(g.scalar("ghost").count(), 0u);
    EXPECT_FALSE(g.hasCounter("ghost"));
    EXPECT_FALSE(g.hasScalar("ghost"));
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.scalars().empty());
}

TEST(Stats, DumpFormatsScalarFields)
{
    StatGroup g;
    g.sample("lat", 2.0);
    g.sample("lat", 4.0);
    const auto s = g.dump("mc.");
    EXPECT_NE(s.find("mc.lat"), std::string::npos);
    EXPECT_NE(s.find("count=2"), std::string::npos);
    EXPECT_NE(s.find("mean=3"), std::string::npos);
    EXPECT_NE(s.find("min=2"), std::string::npos);
    EXPECT_NE(s.find("max=4"), std::string::npos);
    EXPECT_NE(s.find("stddev=1"), std::string::npos);
}

TEST(Histogram, PercentileFindsBinLowerEdge)
{
    Histogram h({0, 10, 100, 1000});
    h.add(5, 50);    // bin [0, 10)
    h.add(50, 40);   // bin [10, 100)
    h.add(500, 10);  // bin [100, 1000)
    EXPECT_EQ(h.percentile(0.25), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(0.51), 10u);
    EXPECT_EQ(h.percentile(0.9), 10u);
    EXPECT_EQ(h.percentile(0.95), 100u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h({0, 10});
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, ToJsonListsEdgesCountsTotal)
{
    Histogram h({0, 10});
    h.add(3, 2);
    h.add(20);
    const auto s = h.toJson();
    EXPECT_NE(s.find("\"edges\":[0,10]"), std::string::npos);
    EXPECT_NE(s.find("\"counts\":[2,1]"), std::string::npos);
    EXPECT_NE(s.find("\"total\":3"), std::string::npos);
}

// -------------------------------------------------------- ClockDivider

TEST(ClockDivider, ExactRatioLongRun)
{
    // 18/5: DDR3-1333 under a 2.4 GHz core.
    ClockDivider div(18, 5);
    const std::uint64_t cpu_ticks = 1800000;
    std::uint64_t derived = 0;
    for (std::uint64_t i = 0; i < cpu_ticks; ++i)
        derived += div.tick();
    EXPECT_EQ(derived, cpu_ticks * 5 / 18);
    EXPECT_EQ(div.derivedTicks(), derived);
}

TEST(ClockDivider, UnityRatioTicksEveryCycle)
{
    ClockDivider div(1, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(div.tick());
}

/** Property: for random ratios, drift never exceeds one tick. */
class DividerProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DividerProperty, NoDrift)
{
    const auto [num, den] = GetParam();
    ClockDivider div(static_cast<std::uint64_t>(num),
                     static_cast<std::uint64_t>(den));
    for (std::uint64_t t = 1; t <= 100000; ++t) {
        div.tick();
        const double expect = static_cast<double>(t) * den / num;
        EXPECT_LE(std::abs(static_cast<double>(div.derivedTicks()) -
                           expect),
                  1.0)
            << "at t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, DividerProperty,
    ::testing::Values(std::make_pair(18, 5), std::make_pair(3, 1),
                      std::make_pair(7, 2), std::make_pair(10, 3),
                      std::make_pair(5, 4)));

// ------------------------------------------------------------- Logging

TEST(Logging, VerboseToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
}

TEST(LoggingDeathTest, AssertAborts)
{
    EXPECT_DEATH(camo_assert(false, "boom"), "assertion failed");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(camo_panic("bad state ", 42), "bad state 42");
}

TEST(LoggingDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(camo_fatal("user error"),
                ::testing::ExitedWithCode(1), "user error");
}

} // namespace
} // namespace camo
