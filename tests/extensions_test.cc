/** @file Tests for extension features: SIV-B4 randomized timing,
 *  sequential/write fakes, FCFS scheduler, closed-page policy,
 *  multi-rank + rank partitioning, MC fake demotion, and the
 *  reconfiguration leakage bound. */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/camouflage/phase_detector.h"
#include "src/camouflage/request_shaper.h"
#include "src/common/rng.h"
#include "src/dram/device.h"
#include "src/mem/controller.h"
#include "src/security/leakage_bound.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo {
namespace {

// --------------------------------------------- randomized timing (SIV-B4)

shaper::RequestShaperConfig
randomizedCfg()
{
    shaper::RequestShaperConfig cfg;
    cfg.bins = shaper::BinConfig::desired();
    cfg.randomizeTiming = true;
    cfg.generateFakes = false;
    return cfg;
}

MemRequest
simpleReq(ReqId id)
{
    MemRequest r;
    r.id = id;
    r.core = 0;
    r.addr = 0x1000 + id * 64;
    return r;
}

TEST(RandomizedTiming, StillReleasesEverything)
{
    shaper::RequestShaper shaper(0, randomizedCfg(), 5);
    Cycle now = 0;
    std::size_t released = 0;
    ReqId id = 1;
    for (; now < 100000 && released < 50; ++now) {
        if (shaper.canAccept() && id <= 50)
            shaper.push(simpleReq(id++), now);
        if (auto r = shaper.tick(now, true))
            released += !r->isFake;
    }
    EXPECT_EQ(released, 50u);
    EXPECT_GT(shaper.stats().counter("randomized.holds"), 0u);
}

TEST(RandomizedTiming, SpreadsIssueGapsWithinBins)
{
    // Saturating traffic with and without randomization: randomized
    // issue gaps should have strictly higher entropy.
    auto run = [](bool randomize) {
        shaper::RequestShaperConfig cfg;
        cfg.bins = shaper::BinConfig::desired();
        cfg.randomizeTiming = randomize;
        cfg.generateFakes = false;
        shaper::RequestShaper shaper(0, cfg, 7);
        ReqId id = 1;
        for (Cycle now = 1; now <= 300000; ++now) {
            if (shaper.canAccept())
                shaper.push(simpleReq(id++), now);
            shaper.tick(now, true);
        }
        // Entropy of the fine-grained gap distribution.
        Histogram fine = Histogram::makeGeometric(48, 2, 1.25);
        const auto &events = shaper.postMonitor().histogram();
        (void)events;
        return shaper.postMonitor().histogram().entropyBits();
    };
    // Note: the post monitor quantizes at the 10 shaper edges, so
    // compare entropy there; randomization moves mass off the exact
    // edge-aligned release points into neighbouring bins.
    const double base = run(false);
    const double randomized = run(true);
    // Both operate; randomized must not be *less* diverse.
    EXPECT_GE(randomized, base - 0.05);
}

// ------------------------------------------------- fake address variants

TEST(FakeVariants, SequentialFakesWalkLines)
{
    shaper::RequestShaperConfig cfg;
    cfg.bins = shaper::BinConfig::desired();
    cfg.fakeSequential = true;
    shaper::RequestShaper shaper(0, cfg, 9);
    std::vector<Addr> addrs;
    for (Cycle now = 1; now <= 60000 && addrs.size() < 30; ++now) {
        if (auto r = shaper.tick(now, true)) {
            ASSERT_TRUE(r->isFake);
            addrs.push_back(r->addr);
        }
    }
    ASSERT_GE(addrs.size(), 10u);
    for (std::size_t i = 1; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], addrs[i - 1] + 64);
}

TEST(FakeVariants, WriteFractionProducesWrites)
{
    shaper::RequestShaperConfig cfg;
    cfg.bins = shaper::BinConfig::desired();
    cfg.fakeWriteFrac = 0.5;
    shaper::RequestShaper shaper(0, cfg, 11);
    std::uint64_t writes = 0, total = 0;
    for (Cycle now = 1; now <= 200000; ++now) {
        if (auto r = shaper.tick(now, true)) {
            ++total;
            writes += r->isWrite;
        }
    }
    ASSERT_GT(total, 100u);
    const double frac = static_cast<double>(writes) / total;
    EXPECT_GT(frac, 0.35);
    EXPECT_LT(frac, 0.65);
}

// ------------------------------------------------------ FCFS scheduler

TEST(Fcfs, ServesStrictlyInOrder)
{
    mem::ControllerConfig cfg;
    cfg.scheduler = mem::SchedulerKind::Fcfs;
    mem::MemoryController mc(cfg);
    Cycle now = 0;
    // Interleave row-hit-friendly and conflicting requests; FCFS must
    // return responses in arrival order regardless.
    std::vector<ReqId> expect;
    for (ReqId i = 0; i < 12; ++i) {
        MemRequest r;
        r.id = i;
        r.core = 0;
        r.addr = (i % 2) ? 0x40 * i : (1ULL << 24) * (i + 1);
        mc.enqueue(r, now);
        expect.push_back(i);
    }
    std::vector<ReqId> got;
    while (got.size() < 12 && now < 200000) {
        ++now;
        mc.tick(now);
        for (auto &resp : mc.popResponses(now))
            got.push_back(resp.id);
    }
    ASSERT_EQ(got.size(), 12u);
    EXPECT_EQ(got, expect);
}

TEST(Fcfs, SlowerThanFrFcfsOnRowLocality)
{
    auto serve_time = [](mem::SchedulerKind kind) {
        mem::ControllerConfig cfg;
        cfg.scheduler = kind;
        mem::MemoryController mc(cfg);
        Cycle now = 0;
        ReqId id = 0;
        // Two interleaved row-hit streams in different banks.
        for (int i = 0; i < 16; ++i) {
            MemRequest r;
            r.id = id++;
            r.core = 0;
            r.addr = (i % 2 ? 0x10000000 : 0) +
                     static_cast<Addr>(i / 2) * 64;
            mc.enqueue(r, now);
        }
        std::size_t served = 0;
        while (served < 16 && now < 300000) {
            ++now;
            mc.tick(now);
            served += mc.popResponses(now).size();
        }
        return now;
    };
    EXPECT_LE(serve_time(mem::SchedulerKind::FrFcfs),
              serve_time(mem::SchedulerKind::Fcfs));
}

// --------------------------------------------------- closed-page policy

TEST(PagePolicy, ClosedPolicyClosesIdleRows)
{
    mem::ControllerConfig cfg;
    cfg.pagePolicy = mem::PagePolicy::Closed;
    mem::MemoryController mc(cfg);
    Cycle now = 0;
    MemRequest r;
    r.id = 1;
    r.core = 0;
    r.addr = 0x1000;
    mc.enqueue(r, now);
    // Serve it, then idle long enough for the policy to close rows.
    for (int i = 0; i < 2000; ++i) {
        ++now;
        mc.tick(now);
        mc.popResponses(now);
    }
    EXPECT_GT(mc.stats().counter("pagepolicy.closes"), 0u);
    const auto da = mc.decode(0x1000, 0);
    EXPECT_FALSE(mc.device().isRowOpen(da));
}

TEST(PagePolicy, OpenPolicyLeavesRowsOpen)
{
    mem::MemoryController mc(mem::ControllerConfig{});
    Cycle now = 0;
    MemRequest r;
    r.id = 1;
    r.core = 0;
    r.addr = 0x1000;
    mc.enqueue(r, now);
    for (int i = 0; i < 2000; ++i) {
        ++now;
        mc.tick(now);
        mc.popResponses(now);
    }
    const auto da = mc.decode(0x1000, 0);
    EXPECT_TRUE(mc.device().isRowOpen(da));
}

// ------------------------------------------------- multi-rank features

TEST(MultiRank, TwoRankDeviceWorks)
{
    dram::DramOrganization org;
    org.ranksPerChannel = 2;
    dram::DramTiming timing;
    dram::DramDevice dev(org, timing);

    // ACTs in different ranks are not tFAW/tRRD coupled.
    const dram::DramAddress r0{0, 0, 0, 1, 0}, r1{0, 1, 0, 1, 0};
    std::uint64_t t = 1;
    while (!dev.canIssue(dram::Cmd::ACT, r0, t))
        ++t;
    dev.issue(dram::Cmd::ACT, r0, t);
    EXPECT_TRUE(dev.canIssue(dram::Cmd::ACT, r1, t + 1))
        << "tRRD is per rank";
}

TEST(MultiRank, RankToRankSwitchAddsTrtrs)
{
    dram::DramOrganization org;
    org.ranksPerChannel = 2;
    dram::DramTiming timing;
    dram::DramDevice dev(org, timing);

    const dram::DramAddress a{0, 0, 0, 1, 0}, b{0, 1, 0, 1, 0};
    std::uint64_t t = 1;
    for (const auto &da : {a, b}) {
        while (!dev.canIssue(dram::Cmd::ACT, da, t))
            ++t;
        dev.issue(dram::Cmd::ACT, da, t);
        ++t;
    }
    t += timing.tRCD;
    while (!dev.canIssue(dram::Cmd::RD, a, t))
        ++t;
    const auto first = dev.issue(dram::Cmd::RD, a, t);

    // Same-rank follow-up can start its burst back-to-back; the
    // other-rank follow-up pays tRTRS on top.
    std::uint64_t t_same = t + 1;
    dram::DramAddress a2 = a;
    a2.column = 1;
    while (!dev.canIssue(dram::Cmd::RD, a2, t_same))
        ++t_same;
    (void)first;

    std::uint64_t t_other = t + 1;
    while (!dev.canIssue(dram::Cmd::RD, b, t_other))
        ++t_other;
    EXPECT_GT(t_other, t_same) << "rank switch pays tRTRS";
}

TEST(MultiRank, RankPartitioningConfinesCores)
{
    mem::ControllerConfig cfg;
    cfg.org.ranksPerChannel = 2;
    cfg.rankPartitioning = true;
    cfg.numCores = 4;
    mem::MemoryController mc(cfg);
    Rng rng(3);
    for (CoreId core = 0; core < 4; ++core) {
        std::set<std::uint32_t> ranks;
        for (int i = 0; i < 300; ++i)
            ranks.insert(mc.decode(rng.next() & ~Addr{63}, core).rank);
        ASSERT_EQ(ranks.size(), 1u) << "core " << core;
        EXPECT_EQ(*ranks.begin(), core % 2);
    }
}

TEST(MultiRank, SystemRunsWithTwoRanks)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mc.org.ranksPerChannel = 2;
    cfg.mc.rankPartitioning = true;
    const auto m = sim::runConfig(cfg, sim::adversaryMix("mcf", "astar"),
                                  30000);
    EXPECT_GT(m.throughput(), 0.0);
}

// ------------------------------------------------------ fake demotion

TEST(FakeDemotion, OffByDefaultAndTogglable)
{
    mem::ControllerConfig cfg;
    EXPECT_FALSE(cfg.demoteFakeTraffic);

    cfg.demoteFakeTraffic = true;
    cfg.readQueueDepth = 8;
    mem::MemoryController mc(cfg);
    // Fill half the queue with real traffic, then fakes get dropped.
    for (ReqId i = 0; i < 4; ++i) {
        MemRequest r;
        r.id = i;
        r.core = 0;
        r.addr = 0x1000 + 64 * i;
        mc.enqueue(r, 0);
    }
    MemRequest fake;
    fake.id = 100;
    fake.core = 1;
    fake.addr = 0x9000;
    fake.isFake = true;
    mc.enqueue(fake, 0);
    EXPECT_EQ(mc.stats().counter("fake.dropped"), 1u);
    EXPECT_EQ(mc.readQueueSize(), 4u);
}

TEST(FakeDemotion, WithoutDemotionFakesAreQueued)
{
    mem::ControllerConfig cfg;
    cfg.readQueueDepth = 8;
    mem::MemoryController mc(cfg);
    for (ReqId i = 0; i < 4; ++i) {
        MemRequest r;
        r.id = i;
        r.core = 0;
        r.addr = 0x1000 + 64 * i;
        mc.enqueue(r, 0);
    }
    MemRequest fake;
    fake.id = 100;
    fake.core = 1;
    fake.addr = 0x9000;
    fake.isFake = true;
    mc.enqueue(fake, 0);
    EXPECT_EQ(mc.stats().counter("fake.dropped"), 0u);
    EXPECT_EQ(mc.readQueueSize(), 5u);
}

// -------------------------------------------------- leakage bound

TEST(LeakageBound, Formula)
{
    EXPECT_DOUBLE_EQ(security::reconfigLeakBoundBits(0, 8), 0.0);
    EXPECT_DOUBLE_EQ(security::reconfigLeakBoundBits(10, 1), 0.0);
    EXPECT_DOUBLE_EQ(security::reconfigLeakBoundBits(10, 8), 30.0);
    EXPECT_DOUBLE_EQ(security::gaConfigPhaseLeakBoundBits(20, 16),
                     20.0 * 16.0 * 4.0);
}

TEST(LeakageBound, ReportedByOnlineGa)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    ga::GaConfig ga_cfg;
    ga_cfg.generations = 2;
    ga_cfg.populationSize = 4;
    const auto result = sim::runOnlineGa(
        cfg, sim::adversaryMix("astar", "astar"), ga_cfg, 5000);
    EXPECT_DOUBLE_EQ(result.configPhaseLeakBoundBits,
                     security::gaConfigPhaseLeakBoundBits(2, 4));
}

// ------------------------------------------- randomized timing, system

TEST(RandomizedTiming, SystemLevelStillProgresses)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    cfg.randomizeTiming = true;
    const auto m = sim::runConfig(cfg, sim::adversaryMix("mcf", "bzip"),
                                  50000);
    EXPECT_GT(m.throughput(), 0.0);
}


// -------------------------------------------------- phase detection

TEST(PhaseDetector, StableRateNeverFires)
{
    shaper::PhaseDetector det(0.25, 0.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(det.sample(0.01 + 0.0005 * (i % 3)));
    EXPECT_EQ(det.changesDetected(), 0u);
}

TEST(PhaseDetector, StepChangeFiresOnce)
{
    shaper::PhaseDetector det(0.25, 0.5);
    for (int i = 0; i < 10; ++i)
        det.sample(0.01);
    EXPECT_TRUE(det.sample(0.05)) << "5x jump must fire";
    // After re-anchoring, the new level is normal.
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(det.sample(0.05));
    EXPECT_EQ(det.changesDetected(), 1u);
}

TEST(PhaseDetector, WarmupSuppressesEarlyFiring)
{
    shaper::PhaseDetector det(0.25, 0.5, /*warmup=*/5);
    EXPECT_FALSE(det.sample(0.01));
    EXPECT_FALSE(det.sample(0.10)) << "still warming up";
}

TEST(PhaseDetector, DropDetectedToo)
{
    shaper::PhaseDetector det(0.25, 0.5);
    for (int i = 0; i < 10; ++i)
        det.sample(0.05);
    EXPECT_TRUE(det.sample(0.005));
}

TEST(AdaptiveRuntime, RunsAndRespectsLeakBudget)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    sim::AdaptiveConfig ad;
    ad.ga.generations = 2;
    ad.ga.populationSize = 4;
    ad.epochCycles = 10000;
    ad.maxReconfigs = 2;
    const auto r = sim::runAdaptive(
        cfg, sim::adversaryMix("bzip", "apache"), 300000, ad);
    EXPECT_GT(r.metrics.throughput(), 0.0);
    EXPECT_GE(r.reconfigurations, 1u);
    EXPECT_LE(r.reconfigurations, 2u);
    EXPECT_DOUBLE_EQ(r.leakBoundBits,
                     static_cast<double>(r.reconfigurations) *
                         security::gaConfigPhaseLeakBoundBits(2, 4));
}

} // namespace
} // namespace camo
