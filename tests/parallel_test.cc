/**
 * @file
 * Tests for the parallel experiment engine (src/sim/parallel.h):
 * thread-safety of concurrent Systems, the submission-order +
 * index-derived-seed determinism contract (parallel output must be
 * byte-identical to sequential), and the offline GA's reproducibility.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/hard/error.h"
#include "src/obs/registry.h"
#include "src/sim/parallel.h"
#include "src/sim/plan.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/sim/shard.h"

using namespace camo;

namespace {

constexpr Cycle kCycles = 40000;

std::string
statsJsonOf(const sim::SystemConfig &cfg,
            const std::vector<std::string> &mix, Cycle cycles)
{
    sim::System system(cfg, mix);
    system.run(cycles);
    obs::StatRegistry reg;
    system.registerStats(reg);
    return reg.toJson().dump(2);
}

bool
sameMetrics(const sim::RunMetrics &a, const sim::RunMetrics &b)
{
    return a.cycles == b.cycles && a.ipc == b.ipc &&
           a.retired == b.retired && a.servedReads == b.servedReads &&
           a.avgReadLatency == b.avgReadLatency && a.alpha == b.alpha;
}

} // namespace

TEST(DeriveSeed, DeterministicDistinctAndNonZero)
{
    EXPECT_EQ(sim::deriveSeed(1, 2, 3), sim::deriveSeed(1, 2, 3));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 42ull}) {
        for (std::uint64_t stream = 0; stream < 4; ++stream) {
            for (std::uint64_t idx = 0; idx < 8; ++idx) {
                const std::uint64_t s =
                    sim::deriveSeed(base, stream, idx);
                EXPECT_NE(s, 0u);
                seen.insert(s);
            }
        }
    }
    EXPECT_EQ(seen.size(), 3u * 4u * 8u) << "seed collision";
}

/** The engine's seed streams must never collide: stream 0 (sweep
 *  jobs / GA alone-rate), streams generation+1 (GA children),
 *  kRetrySeedStream (daemon retry re-derivation) and kShardSeedStream
 *  (shard frame authentication) each own a disjoint seed space. */
TEST(DeriveSeed, StreamIdsAreDisjointAcrossEngineUses)
{
    const std::uint64_t streams[] = {
        0,    // sweep jobs and the GA's alone-rate runs
        1,    // GA generation 0 children
        2,    // GA generation 1 children
        9,    // a later generation
        sim::kRetrySeedStream,
        sim::kShardSeedStream,
    };
    constexpr std::uint64_t kIndices = 64;
    for (const std::uint64_t base : {1ull, 0x9E3779B97F4A7C15ull}) {
        std::set<std::uint64_t> seen;
        for (const std::uint64_t stream : streams) {
            for (std::uint64_t idx = 0; idx < kIndices; ++idx)
                seen.insert(sim::deriveSeed(base, stream, idx));
        }
        EXPECT_EQ(seen.size(), std::size(streams) * kIndices)
            << "stream collision under base " << base;
    }
    // And the streams are pinned constants — a renumbering would
    // silently re-seed published experiments.
    EXPECT_EQ(sim::kRetrySeedStream, 0xFA117u);
    EXPECT_EQ(sim::kShardSeedStream, 0xD15C0u);
}

TEST(ParallelMap, ResultsInSubmissionOrder)
{
    const auto out = sim::parallelMap(100, 4, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, PropagatesExceptions)
{
    EXPECT_THROW(sim::parallelMap(8, 4,
                                  [](std::size_t i) -> int {
                                      if (i == 5)
                                          throw std::runtime_error("x");
                                      return 0;
                                  }),
                 std::runtime_error);
}

TEST(ParallelMap, PoolIsReusableAcrossBatches)
{
    sim::WorkerPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::vector<int> out(64, -1);
        pool.forEachIndex(out.size(), [&](std::size_t i) {
            out[i] = round * 1000 + static_cast<int>(i);
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], round * 1000 + static_cast<int>(i));
    }
}

/** Two Systems ticking concurrently must not interfere: each run's
 *  full stats tree must match the same run done alone. */
TEST(ParallelSystems, ConcurrentRunsMatchSequentialByteForByte)
{
    sim::SystemConfig a = sim::paperConfig();
    a.mitigation = sim::Mitigation::BDC;
    a.seed = 7;
    sim::SystemConfig b = sim::paperConfig();
    b.mitigation = sim::Mitigation::ReqC;
    b.seed = 9;
    const auto mix_a = sim::adversaryMix("mcf", "astar");
    const auto mix_b = sim::adversaryMix("probe", "apache");

    const std::string seq_a = statsJsonOf(a, mix_a, kCycles);
    const std::string seq_b = statsJsonOf(b, mix_b, kCycles);

    std::string par_a, par_b;
    std::thread ta([&] { par_a = statsJsonOf(a, mix_a, kCycles); });
    std::thread tb([&] { par_b = statsJsonOf(b, mix_b, kCycles); });
    ta.join();
    tb.join();

    EXPECT_EQ(seq_a, par_a);
    EXPECT_EQ(seq_b, par_b);
}

TEST(RunConfigsParallel, MatchesSequentialExactly)
{
    std::vector<sim::SimJob> batch;
    std::size_t k = 0;
    for (const char *adv : {"mcf", "libqt", "bzip"}) {
        for (const auto mit :
             {sim::Mitigation::None, sim::Mitigation::BDC}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mitigation = mit;
            cfg.seed = sim::deriveSeed(1, 0, k++);
            batch.push_back(
                {cfg, sim::adversaryMix(adv, "astar"), kCycles, 5000});
        }
    }

    // Reference: a plain sequential loop.
    std::vector<sim::RunMetrics> seq;
    for (const auto &job : batch)
        seq.push_back(sim::runConfig(job.cfg, job.workloads,
                                     job.cycles, job.warmup));

    const auto one = sim::runConfigsParallel(batch, 1);
    const auto four = sim::runConfigsParallel(batch, 4);
    ASSERT_EQ(one.size(), batch.size());
    ASSERT_EQ(four.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(sameMetrics(seq[i], one[i])) << "job " << i;
        EXPECT_TRUE(sameMetrics(seq[i], four[i])) << "job " << i;
    }
}

TEST(OfflineGa, ReproducibleAndJobCountInvariant)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    ga::GaConfig ga_cfg;
    ga_cfg.generations = 2;
    ga_cfg.populationSize = 6;
    const auto mix = sim::adversaryMix("bzip", "astar");

    const auto one =
        sim::runOfflineGa(cfg, mix, ga_cfg, /*epoch=*/10000, 1);
    const auto four =
        sim::runOfflineGa(cfg, mix, ga_cfg, /*epoch=*/10000, 4);

    EXPECT_EQ(one.bestFitness, four.bestFitness);
    EXPECT_EQ(one.generationBest, four.generationBest);
    ASSERT_EQ(one.reqBinsPerCore.size(), four.reqBinsPerCore.size());
    for (std::size_t c = 0; c < one.reqBinsPerCore.size(); ++c) {
        EXPECT_EQ(one.reqBinsPerCore[c].toString(),
                  four.reqBinsPerCore[c].toString());
        EXPECT_EQ(one.respBinsPerCore[c].toString(),
                  four.respBinsPerCore[c].toString());
    }
    EXPECT_EQ(one.configPhaseLeakBoundBits, 0.0);
}

TEST(EvaluateGenerationParallel, JobCountInvariant)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    const auto mix = sim::adversaryMix("mcf", "astar");

    // A handful of hand-rolled genomes (10 request genes per core).
    const std::size_t genome_len = cfg.numCores * 10;
    std::vector<ga::Genome> children;
    for (std::uint32_t v : {1u, 2u, 4u})
        children.push_back(ga::Genome(genome_len, v));

    const std::vector<double> alone_rate(cfg.numCores, 0.01);
    const auto one = sim::evaluateGenerationParallel(
        cfg, mix, children, /*generation=*/0, alone_rate,
        /*epoch=*/10000, 1);
    const auto four = sim::evaluateGenerationParallel(
        cfg, mix, children, /*generation=*/0, alone_rate,
        /*epoch=*/10000, 4);
    EXPECT_EQ(one, four);
    ASSERT_EQ(one.size(), children.size());
}

// ---------------------------------------------------------------
// SystemPlan: compiled-plan construction is bit-exact with the
// legacy one-shot System constructor
// ---------------------------------------------------------------

TEST(SystemPlan, InstantiateMatchesLegacySystemByteForByte)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    cfg.seed = 11;
    // Include a trace-replay workload so the eager-load path is
    // exercised, not just the synthetic models.
    const std::vector<std::string> mix = {"mcf", "dramsim2:@sample",
                                          "astar", "astar"};

    const std::string legacy = statsJsonOf(cfg, mix, kCycles);

    const sim::SystemPlan plan(cfg, mix);
    std::unique_ptr<sim::System> planned = plan.instantiate();
    planned->run(kCycles);
    obs::StatRegistry reg;
    planned->registerStats(reg);
    EXPECT_EQ(legacy, reg.toJson().dump(2));
}

TEST(SystemPlan, SeedOverrideMatchesRebuiltConfig)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    const auto mix = sim::adversaryMix("bzip", "astar");

    sim::SystemConfig reseeded = cfg;
    reseeded.seed = sim::deriveSeed(cfg.seed, 0, 3);
    const std::string legacy = statsJsonOf(reseeded, mix, kCycles);

    const sim::SystemPlan plan(cfg, mix);
    sim::PlanOverrides ov;
    ov.seed = sim::deriveSeed(cfg.seed, 0, 3);
    std::unique_ptr<sim::System> planned = plan.instantiate(ov);
    planned->run(kCycles);
    obs::StatRegistry reg;
    planned->registerStats(reg);
    EXPECT_EQ(legacy, reg.toJson().dump(2));
}

TEST(SystemPlan, RejectsMalformedInputsLikeSystemDoes)
{
    sim::SystemConfig cfg = sim::paperConfig();
    // Bad workload name fails compilation at plan build.
    EXPECT_THROW(sim::SystemPlan(cfg, {"mcf", "nope", "astar", "astar"}),
                 hard::ConfigError);

    // Wrong-size per-core override fails at instantiate.
    const sim::SystemPlan plan(cfg, sim::adversaryMix("mcf", "astar"));
    sim::PlanOverrides ov;
    ov.reqBinsPerCore =
        std::vector<shaper::BinConfig>(cfg.numCores + 1);
    EXPECT_THROW((void)plan.instantiate(ov), hard::ConfigError);
}

// ---------------------------------------------------------------
// Multi-process sharding: byte-identity with the in-process engine
// and structured child-error propagation
// ---------------------------------------------------------------

TEST(RunConfigsSharded, MatchesInProcessEngineExactly)
{
    std::vector<sim::SimJob> batch;
    std::size_t k = 0;
    for (const char *adv : {"mcf", "libqt", "bzip", "hmmer", "gcc"}) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::BDC;
        cfg.seed = sim::deriveSeed(5, 0, k++);
        batch.push_back(
            {cfg, sim::adversaryMix(adv, "astar"), kCycles, 5000});
    }

    const auto inproc = sim::runConfigsParallel(batch, 2);
    const auto two = sim::runConfigsSharded(batch, 2, 2);
    const auto three = sim::runConfigsSharded(batch, 1, 3);
    // More shards than jobs degrades gracefully to one job per shard.
    const auto many = sim::runConfigsSharded(batch, 1, 16);
    ASSERT_EQ(two.size(), batch.size());
    ASSERT_EQ(three.size(), batch.size());
    ASSERT_EQ(many.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(sameMetrics(inproc[i], two[i])) << "job " << i;
        EXPECT_TRUE(sameMetrics(inproc[i], three[i])) << "job " << i;
        EXPECT_TRUE(sameMetrics(inproc[i], many[i])) << "job " << i;
    }
}

TEST(RunConfigsSharded, ChildConfigErrorSurfacesInParent)
{
    std::vector<sim::SimJob> batch;
    for (std::size_t k = 0; k < 3; ++k) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.seed = 1 + k;
        batch.push_back(
            {cfg, sim::adversaryMix("mcf", "astar"), 10000, 1000});
    }
    // Poison the middle job: its shard must report a structured
    // ConfigError that the parent rethrows with the original text.
    batch[1].workloads[1] = "webdiurnal:9";
    try {
        (void)sim::runConfigsSharded(batch, 1, 2);
        FAIL() << "poisoned batch was accepted";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "bad day length (instructions >= 24)"),
                  std::string::npos)
            << e.what();
    }
}

TEST(EvaluateGenerationSharded, MatchesInProcessEngineExactly)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    const auto mix = sim::adversaryMix("mcf", "astar");
    const sim::SystemPlan plan(cfg, mix);

    const std::size_t genome_len = cfg.numCores * 10;
    std::vector<ga::Genome> children;
    for (std::uint32_t v : {1u, 2u, 3u, 4u, 5u})
        children.push_back(ga::Genome(genome_len, v));
    const std::vector<double> alone_rate(cfg.numCores, 0.01);

    const auto inproc = sim::evaluateGenerationParallel(
        cfg, mix, children, /*generation=*/2, alone_rate,
        /*epoch=*/10000, 2);
    const auto sharded = sim::evaluateGenerationSharded(
        plan, children, /*generation=*/2, alone_rate,
        /*epoch=*/10000, 1, 2);
    EXPECT_EQ(inproc, sharded);
}

TEST(OfflineGa, ShardProcsInvariant)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    ga::GaConfig ga_cfg;
    ga_cfg.generations = 2;
    ga_cfg.populationSize = 6;
    const auto mix = sim::adversaryMix("bzip", "astar");

    const auto inproc =
        sim::runOfflineGa(cfg, mix, ga_cfg, /*epoch=*/10000, 2);
    const auto sharded = sim::runOfflineGa(cfg, mix, ga_cfg,
                                           /*epoch=*/10000, 1,
                                           /*shard_procs=*/2);

    EXPECT_EQ(inproc.bestFitness, sharded.bestFitness);
    EXPECT_EQ(inproc.generationBest, sharded.generationBest);
    ASSERT_EQ(inproc.reqBinsPerCore.size(),
              sharded.reqBinsPerCore.size());
    for (std::size_t c = 0; c < inproc.reqBinsPerCore.size(); ++c) {
        EXPECT_EQ(inproc.reqBinsPerCore[c].toString(),
                  sharded.reqBinsPerCore[c].toString());
        EXPECT_EQ(inproc.respBinsPerCore[c].toString(),
                  sharded.respBinsPerCore[c].toString());
    }
}
