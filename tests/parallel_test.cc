/**
 * @file
 * Tests for the parallel experiment engine (src/sim/parallel.h):
 * thread-safety of concurrent Systems, the submission-order +
 * index-derived-seed determinism contract (parallel output must be
 * byte-identical to sequential), and the offline GA's reproducibility.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/registry.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kCycles = 40000;

std::string
statsJsonOf(const sim::SystemConfig &cfg,
            const std::vector<std::string> &mix, Cycle cycles)
{
    sim::System system(cfg, mix);
    system.run(cycles);
    obs::StatRegistry reg;
    system.registerStats(reg);
    return reg.toJson().dump(2);
}

bool
sameMetrics(const sim::RunMetrics &a, const sim::RunMetrics &b)
{
    return a.cycles == b.cycles && a.ipc == b.ipc &&
           a.retired == b.retired && a.servedReads == b.servedReads &&
           a.avgReadLatency == b.avgReadLatency && a.alpha == b.alpha;
}

} // namespace

TEST(DeriveSeed, DeterministicDistinctAndNonZero)
{
    EXPECT_EQ(sim::deriveSeed(1, 2, 3), sim::deriveSeed(1, 2, 3));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 42ull}) {
        for (std::uint64_t stream = 0; stream < 4; ++stream) {
            for (std::uint64_t idx = 0; idx < 8; ++idx) {
                const std::uint64_t s =
                    sim::deriveSeed(base, stream, idx);
                EXPECT_NE(s, 0u);
                seen.insert(s);
            }
        }
    }
    EXPECT_EQ(seen.size(), 3u * 4u * 8u) << "seed collision";
}

TEST(ParallelMap, ResultsInSubmissionOrder)
{
    const auto out = sim::parallelMap(100, 4, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, PropagatesExceptions)
{
    EXPECT_THROW(sim::parallelMap(8, 4,
                                  [](std::size_t i) -> int {
                                      if (i == 5)
                                          throw std::runtime_error("x");
                                      return 0;
                                  }),
                 std::runtime_error);
}

TEST(ParallelMap, PoolIsReusableAcrossBatches)
{
    sim::WorkerPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::vector<int> out(64, -1);
        pool.forEachIndex(out.size(), [&](std::size_t i) {
            out[i] = round * 1000 + static_cast<int>(i);
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], round * 1000 + static_cast<int>(i));
    }
}

/** Two Systems ticking concurrently must not interfere: each run's
 *  full stats tree must match the same run done alone. */
TEST(ParallelSystems, ConcurrentRunsMatchSequentialByteForByte)
{
    sim::SystemConfig a = sim::paperConfig();
    a.mitigation = sim::Mitigation::BDC;
    a.seed = 7;
    sim::SystemConfig b = sim::paperConfig();
    b.mitigation = sim::Mitigation::ReqC;
    b.seed = 9;
    const auto mix_a = sim::adversaryMix("mcf", "astar");
    const auto mix_b = sim::adversaryMix("probe", "apache");

    const std::string seq_a = statsJsonOf(a, mix_a, kCycles);
    const std::string seq_b = statsJsonOf(b, mix_b, kCycles);

    std::string par_a, par_b;
    std::thread ta([&] { par_a = statsJsonOf(a, mix_a, kCycles); });
    std::thread tb([&] { par_b = statsJsonOf(b, mix_b, kCycles); });
    ta.join();
    tb.join();

    EXPECT_EQ(seq_a, par_a);
    EXPECT_EQ(seq_b, par_b);
}

TEST(RunConfigsParallel, MatchesSequentialExactly)
{
    std::vector<sim::SimJob> batch;
    std::size_t k = 0;
    for (const char *adv : {"mcf", "libqt", "bzip"}) {
        for (const auto mit :
             {sim::Mitigation::None, sim::Mitigation::BDC}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mitigation = mit;
            cfg.seed = sim::deriveSeed(1, 0, k++);
            batch.push_back(
                {cfg, sim::adversaryMix(adv, "astar"), kCycles, 5000});
        }
    }

    // Reference: a plain sequential loop.
    std::vector<sim::RunMetrics> seq;
    for (const auto &job : batch)
        seq.push_back(sim::runConfig(job.cfg, job.workloads,
                                     job.cycles, job.warmup));

    const auto one = sim::runConfigsParallel(batch, 1);
    const auto four = sim::runConfigsParallel(batch, 4);
    ASSERT_EQ(one.size(), batch.size());
    ASSERT_EQ(four.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(sameMetrics(seq[i], one[i])) << "job " << i;
        EXPECT_TRUE(sameMetrics(seq[i], four[i])) << "job " << i;
    }
}

TEST(OfflineGa, ReproducibleAndJobCountInvariant)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    ga::GaConfig ga_cfg;
    ga_cfg.generations = 2;
    ga_cfg.populationSize = 6;
    const auto mix = sim::adversaryMix("bzip", "astar");

    const auto one =
        sim::runOfflineGa(cfg, mix, ga_cfg, /*epoch=*/10000, 1);
    const auto four =
        sim::runOfflineGa(cfg, mix, ga_cfg, /*epoch=*/10000, 4);

    EXPECT_EQ(one.bestFitness, four.bestFitness);
    EXPECT_EQ(one.generationBest, four.generationBest);
    ASSERT_EQ(one.reqBinsPerCore.size(), four.reqBinsPerCore.size());
    for (std::size_t c = 0; c < one.reqBinsPerCore.size(); ++c) {
        EXPECT_EQ(one.reqBinsPerCore[c].toString(),
                  four.reqBinsPerCore[c].toString());
        EXPECT_EQ(one.respBinsPerCore[c].toString(),
                  four.respBinsPerCore[c].toString());
    }
    EXPECT_EQ(one.configPhaseLeakBoundBits, 0.0);
}

TEST(EvaluateGenerationParallel, JobCountInvariant)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::ReqC;
    const auto mix = sim::adversaryMix("mcf", "astar");

    // A handful of hand-rolled genomes (10 request genes per core).
    const std::size_t genome_len = cfg.numCores * 10;
    std::vector<ga::Genome> children;
    for (std::uint32_t v : {1u, 2u, 4u})
        children.push_back(ga::Genome(genome_len, v));

    const std::vector<double> alone_rate(cfg.numCores, 0.01);
    const auto one = sim::evaluateGenerationParallel(
        cfg, mix, children, /*generation=*/0, alone_rate,
        /*epoch=*/10000, 1);
    const auto four = sim::evaluateGenerationParallel(
        cfg, mix, children, /*generation=*/0, alone_rate,
        /*epoch=*/10000, 4);
    EXPECT_EQ(one, four);
    ASSERT_EQ(one.size(), children.size());
}
