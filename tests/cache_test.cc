/** @file Tests for the cache array and two-level hierarchy. */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/cache.h"
#include "src/cache/hierarchy.h"
#include "src/common/rng.h"

namespace camo::cache {
namespace {

// ----------------------------------------------------------- CacheArray

TEST(CacheArray, MissThenHit)
{
    CacheArray c({1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x100, false));
    c.insert(0x100, false);
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13f, false)) << "same line, different byte";
    EXPECT_FALSE(c.access(0x140, false)) << "next line";
}

TEST(CacheArray, WriteSetsDirty)
{
    CacheArray c({1024, 2, 64, 1});
    c.insert(0x100, false);
    EXPECT_FALSE(c.isDirty(0x100));
    c.access(0x100, true);
    EXPECT_TRUE(c.isDirty(0x100));
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 64B lines, 8 sets (1KB): lines 0x000, 0x200, 0x400 map
    // to set 0.
    CacheArray c({1024, 2, 64, 1});
    c.insert(0x000, false);
    c.insert(0x200, false);
    c.access(0x000, false); // touch: 0x200 becomes LRU
    const auto ev = c.insert(0x400, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, 0x200u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x200));
}

TEST(CacheArray, EvictionReportsDirtyBit)
{
    CacheArray c({1024, 2, 64, 1});
    c.insert(0x000, true);
    c.insert(0x200, false);
    const auto ev = c.insert(0x400, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, 0x000u);
    EXPECT_TRUE(ev->dirty);
}

TEST(CacheArray, ReinsertMergesDirtyState)
{
    CacheArray c({1024, 2, 64, 1});
    c.insert(0x100, true);
    EXPECT_FALSE(c.insert(0x100, false).has_value());
    EXPECT_TRUE(c.isDirty(0x100)) << "dirty bit must not be lost";
}

TEST(CacheArray, InvalidateReturnsDirty)
{
    CacheArray c({1024, 2, 64, 1});
    c.insert(0x100, true);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.invalidate(0x100)) << "already gone";
}

TEST(CacheArray, LineAddrAlignment)
{
    CacheArray c({1024, 2, 64, 1});
    EXPECT_EQ(c.lineAddrOf(0x1234), 0x1200u);
    EXPECT_EQ(c.lineAddrOf(0x1200), 0x1200u);
}

TEST(CacheArray, StatsCountHitsAndMisses)
{
    CacheArray c({1024, 2, 64, 1});
    c.access(0x100, false);
    c.insert(0x100, false);
    c.access(0x100, false);
    c.access(0x100, true);
    EXPECT_EQ(c.stats().counter("misses.read"), 1u);
    EXPECT_EQ(c.stats().counter("hits.read"), 1u);
    EXPECT_EQ(c.stats().counter("hits.write"), 1u);
}

/** Property: capacity is respected — no more lines than size/64. */
TEST(CacheArray, CapacityProperty)
{
    const CacheConfig cfg{4096, 4, 64, 1};
    CacheArray c(cfg);
    Rng rng(3);
    std::set<Addr> inserted;
    std::size_t resident = 0;
    for (int i = 0; i < 3000; ++i) {
        const Addr line = (rng.next() & 0xFFFFF) & ~Addr{63};
        if (!c.contains(line)) {
            const auto ev = c.insert(line, rng.chance(0.5));
            resident += 1;
            if (ev)
                resident -= 1;
        }
        ASSERT_LE(resident, 4096u / 64u);
    }
}

// ------------------------------------------------------ CacheHierarchy

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    cfg.l1 = {1024, 2, 64, 4};
    cfg.l2 = {4096, 4, 64, 12};
    cfg.mshrs = 4;
    return cfg;
}

TEST(Hierarchy, MissGoesToMemory)
{
    CacheHierarchy h(0, smallConfig());
    const auto r = h.access(0x10000, false, 100);
    EXPECT_EQ(r.kind, AccessKind::Miss);
    EXPECT_EQ(r.lineAddr, 0x10000u);
    const auto out = h.popOutgoing();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x10000u);
    EXPECT_FALSE(out[0].isWrite);
    EXPECT_EQ(out[0].core, 0u);
}

TEST(Hierarchy, FillMakesSubsequentAccessesHit)
{
    CacheHierarchy h(0, smallConfig());
    h.access(0x10000, false, 100);
    h.popOutgoing();
    const Cycle done = h.onFill(0x10000, 200);
    EXPECT_GT(done, 200u);
    const auto r = h.access(0x10000, false, 300);
    EXPECT_EQ(r.kind, AccessKind::L1Hit);
    EXPECT_EQ(r.completesAt, 300u + smallConfig().l1.hitLatency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy h(0, smallConfig());
    // Fill a line, then displace it from L1 (1KB, 2-way: lines 0x0,
    // 0x200, 0x400 share a set) while it stays in L2 (4KB, 4-way).
    for (const Addr a : {0x10000u, 0x10200u, 0x10400u}) {
        h.access(a, false, 1);
        h.popOutgoing();
        h.onFill(a, 10);
    }
    const auto r = h.access(0x10000, false, 100);
    EXPECT_EQ(r.kind, AccessKind::L2Hit);
}

TEST(Hierarchy, CoalescingSecondMissToSameLine)
{
    CacheHierarchy h(0, smallConfig());
    EXPECT_EQ(h.access(0x20000, false, 1).kind, AccessKind::Miss);
    EXPECT_EQ(h.access(0x20020, false, 2).kind, AccessKind::Coalesced)
        << "same 64B line";
    EXPECT_EQ(h.popOutgoing().size(), 1u) << "one memory request only";
    EXPECT_EQ(h.mshrsInUse(), 1u);
}

TEST(Hierarchy, MshrExhaustionBlocks)
{
    CacheHierarchy h(0, smallConfig());
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(h.access(0x30000 + a * 64, false, 1).kind,
                  AccessKind::Miss);
    EXPECT_FALSE(h.mshrAvailable());
    EXPECT_EQ(h.access(0x40000, false, 2).kind, AccessKind::Blocked);
    // A fill frees the MSHR.
    h.onFill(0x30000, 10);
    EXPECT_TRUE(h.mshrAvailable());
    EXPECT_EQ(h.access(0x40000, false, 11).kind, AccessKind::Miss);
}

TEST(Hierarchy, StoreMissInstallsDirtyAndWritesBack)
{
    CacheHierarchy h(0, smallConfig());
    EXPECT_EQ(h.access(0x50000, true, 1).kind, AccessKind::Miss);
    h.popOutgoing();
    h.onFill(0x50000, 10);
    EXPECT_TRUE(h.l1().isDirty(0x50000));

    // Push the dirty line all the way out of L2: fill enough lines
    // mapping to the same L2 set (4KB 4-way: stride 0x1000). L1
    // evictions merge into L2 and refresh the dirty line's LRU rank,
    // so it takes several rounds to age it out.
    for (int i = 1; i <= 10; ++i) {
        const Addr a = 0x50000 + static_cast<Addr>(i) * 0x1000;
        h.access(a, false, 100 + i);
        h.popOutgoing();
        h.onFill(a, 200 + i);
    }
    bool saw_writeback = false;
    // The writeback was emitted during one of the fills above; it was
    // drained by popOutgoing already, so count stats instead.
    saw_writeback = h.stats().counter("writebacks") > 0;
    EXPECT_TRUE(saw_writeback);
}

TEST(Hierarchy, FillWithoutMshrPanics)
{
    CacheHierarchy h(0, smallConfig());
    EXPECT_DEATH(h.onFill(0xdead000, 1), "no outstanding MSHR");
}

TEST(Hierarchy, RequestIdsAreUniquePerCore)
{
    CacheHierarchy h(3, smallConfig());
    h.access(0x1000000, false, 1);
    h.access(0x2000000, false, 1);
    const auto out = h.popOutgoing();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0].id, out[1].id);
    EXPECT_EQ(out[0].core, 3u);
    EXPECT_EQ(out[0].id >> 48, 3u) << "core id encoded in request id";
}

/** Property: hit rate for a tiny working set approaches 1. */
TEST(Hierarchy, HotSetHitsProperty)
{
    CacheHierarchy h(0, smallConfig());
    Rng rng(9);
    // Working set: 8 lines (fits L1's 16 lines).
    std::uint64_t hits = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        const Addr a = (rng.below(8)) * 64;
        const auto r = h.access(a, false, static_cast<Cycle>(i));
        if (r.kind == AccessKind::L1Hit) {
            ++hits;
        } else if (r.kind == AccessKind::Miss) {
            h.popOutgoing();
            h.onFill(h.l1().lineAddrOf(a), static_cast<Cycle>(i));
        }
        ++total;
    }
    EXPECT_GT(static_cast<double>(hits) / total, 0.95);
}

} // namespace
} // namespace camo::cache
