/**
 * @file
 * Perf-trajectory diff tests: gated ratio metrics fail the report on
 * a >threshold regression, absolute host-dependent metrics stay
 * informational, improvements and identical reports pass, and shape
 * problems (missing metrics, schema drift) degrade to notes instead
 * of verdicts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/obs/benchdiff.h"
#include "src/obs/json.h"

using namespace camo;
using obs::json::Value;

namespace {

Value
report(double speedup_bdc, double ticks_ff = 500000.0,
       double sweep_speedup = 3.0)
{
    Value root = Value::makeObject();
    root["schema_version"] = Value(obs::kBenchSchemaVersion);
    root["bench"] = Value("perf_report");

    Value rows = Value::makeArray();
    Value row = Value::makeObject();
    row["mitigation"] = Value("BDC");
    row["ticks_per_sec_loop"] = Value(250000.0);
    row["ticks_per_sec_fastforward"] = Value(ticks_ff);
    row["speedup"] = Value(speedup_bdc);
    rows.push(std::move(row));
    root["single_thread"] = std::move(rows);

    Value sweep = Value::makeObject();
    sweep["jobs"] = Value(std::uint64_t{4});
    sweep["wall_clock_jobs1_sec"] = Value(8.0);
    sweep["wall_clock_jobsN_sec"] = Value(2.0);
    sweep["speedup"] = Value(sweep_speedup);
    root["sweep"] = std::move(sweep);
    return root;
}

} // namespace

TEST(BenchDiff, IdenticalReportsPass)
{
    const Value r = report(2.0);
    const obs::DiffReport d = obs::diffBenchReports(r, r);
    EXPECT_TRUE(d.ok());
    EXPECT_TRUE(d.regressions().empty());
    EXPECT_NE(d.text().find("OK"), std::string::npos);
}

TEST(BenchDiff, TenPercentSpeedupRegressionFails)
{
    // 2.0 -> 1.7 is a 15% drop on a gated ratio metric.
    const obs::DiffReport d =
        obs::diffBenchReports(report(2.0), report(1.7));
    ASSERT_EQ(d.regressions().size(), 1u);
    EXPECT_EQ(d.regressions()[0]->name, "single_thread.BDC.speedup");
    EXPECT_FALSE(d.ok());
    EXPECT_NE(d.text().find("REGRESSED"), std::string::npos);
    EXPECT_NE(d.text().find("FAIL"), std::string::npos);
}

TEST(BenchDiff, RegressionWithinThresholdPasses)
{
    // 2.0 -> 1.9 is 5%: inside the default 10% tolerance.
    EXPECT_TRUE(obs::diffBenchReports(report(2.0), report(1.9)).ok());
    // ...but not inside a tightened 2% threshold.
    obs::DiffOptions tight;
    tight.threshold = 0.02;
    EXPECT_FALSE(
        obs::diffBenchReports(report(2.0), report(1.9), tight).ok());
}

TEST(BenchDiff, ImprovementPasses)
{
    EXPECT_TRUE(obs::diffBenchReports(report(2.0), report(3.0)).ok());
}

TEST(BenchDiff, AbsoluteMetricsAreInformationalUnlessGated)
{
    // Halved ticks/sec: host-dependent, not gated by default.
    const obs::DiffReport d = obs::diffBenchReports(
        report(2.0, 500000.0), report(2.0, 250000.0));
    EXPECT_TRUE(d.ok());

    obs::DiffOptions gate_abs;
    gate_abs.gateAbsolute = true;
    const obs::DiffReport g = obs::diffBenchReports(
        report(2.0, 500000.0), report(2.0, 250000.0), gate_abs);
    EXPECT_FALSE(g.ok());
}

TEST(BenchDiff, SweepSpeedupIsGated)
{
    const obs::DiffReport d = obs::diffBenchReports(
        report(2.0, 500000.0, 3.0), report(2.0, 500000.0, 2.0));
    ASSERT_EQ(d.regressions().size(), 1u);
    EXPECT_EQ(d.regressions()[0]->name, "sweep.speedup");
}

TEST(BenchDiff, SweepSpeedupNotGatedWithoutMatchingMultiJobCounts)
{
    // jobs=1 on either side: the "speedup" is load noise, so even a
    // big drop must stay informational (with a note saying why).
    auto with_jobs = [](double sweep_speedup, std::uint64_t jobs) {
        Value r = report(2.0, 500000.0, sweep_speedup);
        r["sweep"]["jobs"] = Value(jobs);
        return r;
    };
    const obs::DiffReport single = obs::diffBenchReports(
        with_jobs(3.0, 1), with_jobs(1.5, 1));
    EXPECT_TRUE(single.ok());
    EXPECT_FALSE(single.notes.empty());

    const obs::DiffReport unequal = obs::diffBenchReports(
        with_jobs(3.0, 4), with_jobs(1.5, 2));
    EXPECT_TRUE(unequal.ok());
}

TEST(BenchDiff, SetupSpeedupIsGatedAndWallClocksAreNot)
{
    auto with_setup = [](double legacy, double plan) {
        Value r = report(2.0);
        Value setup = Value::makeObject();
        setup["sec_per_sim_legacy"] = Value(legacy);
        setup["sec_per_sim_plan"] = Value(plan);
        setup["speedup"] = Value(legacy / plan);
        r["setup"] = std::move(setup);
        return r;
    };
    // 4x -> 1.5x plan speedup: a gated regression.
    const obs::DiffReport d = obs::diffBenchReports(
        with_setup(0.004, 0.001), with_setup(0.003, 0.002));
    ASSERT_EQ(d.regressions().size(), 1u);
    EXPECT_EQ(d.regressions()[0]->name, "setup.speedup");

    // Uniformly slower host, same ratio: absolutes stay informational.
    EXPECT_TRUE(obs::diffBenchReports(with_setup(0.004, 0.001),
                                      with_setup(0.008, 0.002))
                    .ok());
}

TEST(BenchDiff, SkippedParallelSpeedupGetsAnExplicitNote)
{
    Value one_core = report(2.0);
    one_core["sweep"]["jobs"] = Value(std::uint64_t{1});
    Value &sweep = one_core["sweep"];
    // A 1-core report records the note instead of the number.
    sweep["note"] = Value("skipped_parallel_speedup");

    const obs::DiffReport d =
        obs::diffBenchReports(report(2.0), one_core);
    EXPECT_TRUE(d.ok());
    bool found = false;
    for (const std::string &n : d.notes)
        found = found || n.find("skipped_parallel_speedup") !=
                             std::string::npos;
    EXPECT_TRUE(found) << "expected an explicit note naming "
                          "skipped_parallel_speedup";
}

TEST(BenchDiff, MissingMetricsBecomeNotesNotFailures)
{
    // v1-era report: no schema stamp, no sweep section, one row
    // missing its speedup field.
    Value stripped = Value::makeObject();
    Value rows = Value::makeArray();
    Value row = Value::makeObject();
    row["mitigation"] = Value("BDC");
    row["ticks_per_sec_loop"] = Value(250000.0);
    rows.push(std::move(row));
    stripped["single_thread"] = std::move(rows);
    const obs::DiffReport d =
        obs::diffBenchReports(report(2.0), stripped);
    EXPECT_TRUE(d.ok()) << "shape drift must not fail the gate";
    EXPECT_FALSE(d.notes.empty());
}

TEST(BenchDiff, BuildInfoJsonCarriesProvenanceFields)
{
    const Value b = obs::buildInfoJson();
    ASSERT_NE(b.find("git_sha"), nullptr);
    ASSERT_NE(b.find("compiler"), nullptr);
    ASSERT_NE(b.find("build_type"), nullptr);
    EXPECT_FALSE(b.find("git_sha")->asString().empty());
}
