/** @file Tests for the Camouflage bin shaper and its request/response
 *  deployments — the paper's core contribution. */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/camouflage/bin_config.h"
#include "src/camouflage/bin_shaper.h"
#include "src/camouflage/monitor.h"
#include "src/camouflage/request_shaper.h"
#include "src/camouflage/response_shaper.h"
#include "src/common/rng.h"
#include "src/hard/error.h"

namespace camo::shaper {
namespace {

MemRequest
req(ReqId id, CoreId core = 0)
{
    MemRequest r;
    r.id = id;
    r.core = core;
    r.addr = 0x1000 + id * 64;
    return r;
}

// ------------------------------------------------------------ BinConfig

TEST(BinConfig, BinOfUsesLowerEdges)
{
    const auto cfg = BinConfig::geometric({1, 1, 1, 1}, 10, 2.0);
    // edges: 0, 10, 20, 40
    EXPECT_EQ(cfg.binOf(0), 0u);
    EXPECT_EQ(cfg.binOf(9), 0u);
    EXPECT_EQ(cfg.binOf(10), 1u);
    EXPECT_EQ(cfg.binOf(39), 2u);
    EXPECT_EQ(cfg.binOf(40), 3u);
    EXPECT_EQ(cfg.binOf(100000), 3u);
}

TEST(BinConfig, TotalsAndRate)
{
    const auto cfg = BinConfig::geometric({5, 3, 2}, 10, 2.0, 1000);
    EXPECT_EQ(cfg.totalCredits(), 10u);
    EXPECT_DOUBLE_EQ(cfg.maxRate(), 0.01);
}

TEST(BinConfig, MinDrainCycles)
{
    BinConfig cfg;
    cfg.edges = {0, 100};
    cfg.credits = {2, 3};
    cfg.replenishPeriod = 1000;
    // Bin 0 issues cost >= 1 cycle each; bin 1 issues 100 each.
    EXPECT_EQ(cfg.minDrainCycles(), 2u * 1 + 3u * 100);
}

TEST(BinConfig, DesiredIsDrainableWithinPeriod)
{
    const auto cfg = BinConfig::desired();
    EXPECT_EQ(cfg.numBins(), kDefaultBins);
    EXPECT_LE(cfg.minDrainCycles(), cfg.replenishPeriod);
    for (std::size_t i = 0; i < kDefaultBins; ++i)
        EXPECT_EQ(cfg.credits[i], kDefaultBins - i);
}

TEST(BinConfig, ConstantRateHasOneUsableBin)
{
    const auto cfg = BinConfig::constantRate(100, 1000);
    ASSERT_EQ(cfg.numBins(), 2u);
    EXPECT_EQ(cfg.credits[0], 0u);
    EXPECT_EQ(cfg.credits[1], 10u);
    EXPECT_EQ(cfg.edges[1], 100u);
}

TEST(BinConfig, ValidationCatchesUserErrors)
{
    BinConfig cfg;
    cfg.edges = {0, 10};
    cfg.credits = {1, 1};
    cfg.replenishPeriod = 100;
    cfg.validate(); // fine

    BinConfig bad = cfg;
    bad.edges = {5, 10};
    EXPECT_THROW(bad.validate(), hard::ConfigError);

    bad = cfg;
    bad.edges = {0, 0};
    EXPECT_THROW(bad.validate(), hard::ConfigError);

    bad = cfg;
    bad.credits = {0, 0};
    EXPECT_THROW(bad.validate(), hard::ConfigError);

    bad = cfg;
    bad.credits = {1, 2000};
    EXPECT_THROW(bad.validate(), hard::ConfigError);
}

// ------------------------------------------------------------ BinShaper

TEST(BinShaper, GapGatesEligibility)
{
    // Bins at 0/100/200 with credits only in the 100-bin.
    BinConfig cfg;
    cfg.edges = {0, 100, 200};
    cfg.credits = {0, 5, 0};
    cfg.replenishPeriod = 10000;
    BinShaper bins(cfg);

    bins.tick(50);
    EXPECT_FALSE(bins.canIssueReal(50)) << "gap 50 -> only bin 0";
    bins.tick(100);
    EXPECT_TRUE(bins.canIssueReal(100));
    EXPECT_EQ(bins.consumeReal(100), 1);
    EXPECT_EQ(bins.lastIssue(), 100u);
}

TEST(BinShaper, ConsumesHighestEligibleBin)
{
    BinConfig cfg;
    cfg.edges = {0, 100, 200};
    cfg.credits = {2, 2, 2};
    cfg.replenishPeriod = 10000;
    BinShaper bins(cfg);
    bins.tick(250);
    // Gap 250 -> bin 2 is the highest with edge <= 250.
    EXPECT_EQ(bins.consumeReal(250), 2);
    EXPECT_EQ(bins.consumeReal(250 + 250), 2);
    // Bin 2 empty now; next consumes bin 1.
    EXPECT_EQ(bins.consumeReal(1000), 1);
}

TEST(BinShaper, CreditsBoundIssuesPerPeriod)
{
    BinConfig cfg;
    cfg.edges = {0, 10};
    cfg.credits = {3, 2};
    cfg.replenishPeriod = 1000;
    BinShaper bins(cfg);
    int issued = 0;
    for (Cycle t = 1; t < 1000; ++t) {
        bins.tick(t);
        if (bins.consumeReal(t) >= 0)
            ++issued;
    }
    EXPECT_EQ(issued, 5) << "total credits cap issues within a period";
}

TEST(BinShaper, ReplenishmentLatchesUnused)
{
    BinConfig cfg;
    cfg.edges = {0, 10};
    cfg.credits = {3, 2};
    cfg.replenishPeriod = 100;
    BinShaper bins(cfg);
    bins.tick(1);
    bins.consumeReal(1); // one bin-0 credit used
    bins.tick(100);      // replenishment boundary
    EXPECT_EQ(bins.replenishments(), 1u);
    EXPECT_EQ(bins.unused()[0], 2u);
    EXPECT_EQ(bins.unused()[1], 2u);
    EXPECT_EQ(bins.credits()[0], 3u) << "credits reloaded";
}

TEST(BinShaper, FakeConsumesExactBinOnly)
{
    BinConfig cfg;
    cfg.edges = {0, 100};
    cfg.credits = {0, 2};
    cfg.replenishPeriod = 200;
    BinShaper bins(cfg);
    // Period 1: nothing issues; at t=200 unused latches {0, 2}.
    bins.tick(200);
    EXPECT_EQ(bins.unusedTotal(), 2u);
    // Gap since lastIssue (0) is 250 -> bin 1: fake allowed.
    EXPECT_FALSE(bins.canIssueFake(250) == false) << "fake eligible";
    EXPECT_EQ(bins.consumeFake(250), 1);
    // Now gap resets; at gap 50 (bin 0) no unused credit exists.
    EXPECT_EQ(bins.consumeFake(300), -1);
    // Wait until gap reaches bin 1 again.
    EXPECT_EQ(bins.consumeFake(350), 1);
    EXPECT_EQ(bins.unusedTotal(), 0u);
}

TEST(BinShaper, ReconfigureKeepsBinCount)
{
    BinShaper bins(BinConfig::desired());
    auto cfg2 = BinConfig::desired();
    cfg2.credits.assign(kDefaultBins, 3);
    bins.reconfigure(cfg2);
    EXPECT_EQ(bins.credits()[0], 3u);
    EXPECT_EQ(bins.unusedTotal(), 0u);
}

/** Property: real issues per period never exceed total credits, for
 *  random configurations and random traffic. */
class BinShaperProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BinShaperProperty, PerPeriodBudgetHolds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    std::vector<std::uint32_t> credits(10);
    for (auto &c : credits)
        c = static_cast<std::uint32_t>(rng.below(20));
    if (std::count(credits.begin(), credits.end(), 0u) == 10)
        credits[0] = 1;
    const Cycle period = 2000 + rng.below(8000);
    const auto cfg = BinConfig::geometric(credits, 5 + rng.below(40),
                                          1.3 + rng.uniform(), period);
    BinShaper bins(cfg);

    std::uint64_t issued_this_period = 0;
    std::uint64_t period_index = 0;
    for (Cycle t = 1; t < 20 * period; ++t) {
        bins.tick(t);
        const std::uint64_t p = t / period;
        if (p != period_index) {
            period_index = p;
            issued_this_period = 0;
        }
        if (rng.chance(0.3) && bins.consumeReal(t) >= 0) {
            ++issued_this_period;
            ASSERT_LE(issued_this_period, cfg.totalCredits())
                << "period " << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinShaperProperty,
                         ::testing::Range(0, 10));

// -------------------------------------------------------- RequestShaper

RequestShaperConfig
reqCfg()
{
    RequestShaperConfig cfg;
    cfg.bins = BinConfig::desired();
    return cfg;
}

TEST(RequestShaper, FifoOrderPreserved)
{
    RequestShaper shaper(0, reqCfg(), 1);
    Cycle now = 0;
    for (ReqId i = 1; i <= 5; ++i)
        shaper.push(req(i), ++now);
    std::vector<ReqId> order;
    for (; order.size() < 5 && now < 100000; ++now) {
        if (auto released = shaper.tick(now, true)) {
            if (!released->isFake)
                order.push_back(released->id);
        }
    }
    ASSERT_EQ(order.size(), 5u);
    for (ReqId i = 1; i <= 5; ++i)
        EXPECT_EQ(order[i - 1], i);
}

TEST(RequestShaper, DownstreamBackpressureHolds)
{
    RequestShaper shaper(0, reqCfg(), 1);
    shaper.push(req(1), 1);
    for (Cycle t = 2; t < 500; ++t)
        EXPECT_FALSE(shaper.tick(t, false).has_value());
    EXPECT_EQ(shaper.queueDepth(), 1u);
}

TEST(RequestShaper, FakesOnlyWhenQueueEmpty)
{
    RequestShaperConfig cfg = reqCfg();
    cfg.generateFakes = true;
    RequestShaper shaper(0, cfg, 1);
    Cycle now = 0;
    // Prime: run one full idle period so unused credits latch, then
    // verify fakes flow; then push a real request and verify the next
    // release is real.
    std::uint64_t fakes = 0;
    for (now = 1; now <= 30000; ++now) {
        if (auto r = shaper.tick(now, true))
            fakes += r->isFake;
    }
    EXPECT_GT(fakes, 10u);

    shaper.push(req(42), now);
    for (;; ++now) {
        if (auto r = shaper.tick(now, true)) {
            EXPECT_FALSE(r->isFake) << "real traffic has priority";
            EXPECT_EQ(r->id, 42u);
            break;
        }
        ASSERT_LT(now, 100000u);
    }
}

TEST(RequestShaper, FakesDisabledMeansSilence)
{
    RequestShaperConfig cfg = reqCfg();
    cfg.generateFakes = false;
    RequestShaper shaper(0, cfg, 1);
    for (Cycle t = 1; t <= 30000; ++t)
        EXPECT_FALSE(shaper.tick(t, true).has_value());
}

TEST(RequestShaper, FakeAddressesInConfiguredRange)
{
    RequestShaperConfig cfg = reqCfg();
    cfg.fakeAddrBase = 0x100000000ULL;
    cfg.fakeAddrRange = 1 << 20;
    RequestShaper shaper(2, cfg, 1);
    std::uint64_t fakes = 0;
    for (Cycle t = 1; t <= 50000; ++t) {
        if (auto r = shaper.tick(t, true)) {
            ASSERT_TRUE(r->isFake);
            EXPECT_TRUE(r->isFake);
            EXPECT_GE(r->addr, cfg.fakeAddrBase);
            EXPECT_LT(r->addr, cfg.fakeAddrBase + cfg.fakeAddrRange);
            EXPECT_EQ(r->core, 2u);
            EXPECT_FALSE(r->isWrite);
            ++fakes;
        }
    }
    EXPECT_GT(fakes, 0u);
}

TEST(RequestShaper, StrictSlotModeIsPeriodic)
{
    RequestShaperConfig cfg = reqCfg();
    cfg.strictSlotInterval = 50;
    cfg.generateFakes = true;
    RequestShaper shaper(0, cfg, 1);
    std::vector<Cycle> issues;
    for (Cycle t = 1; t <= 2000; ++t) {
        if (t == 70)
            shaper.push(req(1), t);
        if (shaper.tick(t, true))
            issues.push_back(t);
    }
    ASSERT_FALSE(issues.empty());
    for (const Cycle t : issues)
        EXPECT_EQ(t % 50, 0u) << "issues only at slot boundaries";
    // Every slot is filled (real or dummy): strictly periodic.
    EXPECT_EQ(issues.size(), 2000u / 50u);
}

TEST(RequestShaper, StrictSlotWithoutFakesWastesEmptySlots)
{
    RequestShaperConfig cfg = reqCfg();
    cfg.strictSlotInterval = 50;
    cfg.generateFakes = false;
    RequestShaper shaper(0, cfg, 1);
    std::uint64_t releases = 0;
    for (Cycle t = 1; t <= 2000; ++t)
        releases += shaper.tick(t, true).has_value();
    EXPECT_EQ(releases, 0u);
    EXPECT_GT(shaper.stats().counter("slots.wasted"), 0u);
}

TEST(RequestShaper, MonitorsRecordBothStreams)
{
    RequestShaper shaper(0, reqCfg(), 1);
    shaper.push(req(1), 10);
    shaper.push(req(2), 20);
    Cycle now = 20;
    int released = 0;
    while (released < 2 && now < 10000) {
        ++now;
        if (auto r = shaper.tick(now, true))
            released += !r->isFake;
    }
    // Monitors count inter-arrival gaps: two events -> one gap.
    EXPECT_EQ(shaper.preMonitor().count(), 1u);
    EXPECT_GE(shaper.postMonitor().count(), 1u);
}

/**
 * Property (the Figure 11 claim): for saturated input traffic and a
 * random feasible configuration, the shaped output distribution
 * matches the programmed distribution closely.
 */
class ShapingConformance : public ::testing::TestWithParam<int>
{
};

TEST_P(ShapingConformance, SaturatedOutputMatchesProgrammedShape)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
    std::vector<std::uint32_t> credits(10);
    for (auto &c : credits)
        c = 1 + static_cast<std::uint32_t>(rng.below(12));
    auto bins = BinConfig::geometric(credits, 10, 1.6, 10000);
    // Keep it drainable so every bin can be exercised.
    ASSERT_LE(bins.minDrainCycles(), bins.replenishPeriod);

    RequestShaperConfig cfg;
    cfg.bins = bins;
    cfg.generateFakes = true;
    RequestShaper shaper(0, cfg, 7);

    ReqId id = 1;
    for (Cycle t = 1; t <= 40 * bins.replenishPeriod; ++t) {
        if (shaper.canAccept())
            shaper.push(req(id++), t); // saturate
        shaper.tick(t, true);
    }

    Histogram target(bins.edges);
    for (std::size_t i = 0; i < bins.numBins(); ++i)
        target.add(bins.edges[i], bins.credits[i]);
    const double tvd =
        shaper.postMonitor().histogram().totalVariationDistance(target);
    EXPECT_LT(tvd, 0.12) << "config: " << bins.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapingConformance,
                         ::testing::Range(0, 8));

// ------------------------------------------------------- ResponseShaper

ResponseShaperConfig
respCfg()
{
    ResponseShaperConfig cfg;
    cfg.bins = BinConfig::desired();
    return cfg;
}

TEST(ResponseShaper, BuffersUntilCreditsAllow)
{
    ResponseShaperConfig cfg = respCfg();
    cfg.generateFakes = false;
    ResponseShaper shaper(0, cfg);
    // Saturate instantly: more responses than bin-0 credits.
    Cycle now = 1;
    for (ReqId i = 1; i <= 20; ++i)
        shaper.push(req(i), now);
    std::uint64_t released_first_100 = 0;
    for (; now <= 100; ++now)
        released_first_100 += shaper.tick(now, true).has_value();
    EXPECT_LT(released_first_100, 20u) << "throttling must happen";
    EXPECT_GT(shaper.queueDepth(), 0u);
}

TEST(ResponseShaper, PriorityWarningProportionalToUnused)
{
    ResponseShaperConfig cfg = respCfg();
    cfg.generateFakes = false;
    cfg.boostScale = 1;
    ResponseShaper shaper(3, cfg);
    // Run a full idle period: all 55 credits go unused.
    for (Cycle t = 1; t <= cfg.bins.replenishPeriod + 10; ++t)
        shaper.tick(t, true);
    const auto boost = shaper.takePriorityWarning();
    EXPECT_EQ(boost, cfg.bins.totalCredits());
    EXPECT_EQ(shaper.takePriorityWarning(), 0u) << "drained";
}

TEST(ResponseShaper, BoostScaleMultiplies)
{
    ResponseShaperConfig cfg = respCfg();
    cfg.generateFakes = false;
    cfg.boostScale = 3;
    ResponseShaper shaper(0, cfg);
    for (Cycle t = 1; t <= cfg.bins.replenishPeriod + 10; ++t)
        shaper.tick(t, true);
    EXPECT_EQ(shaper.takePriorityWarning(),
              3 * cfg.bins.totalCredits());
}

TEST(ResponseShaper, FakeResponsesFillIdle)
{
    ResponseShaper shaper(0, respCfg());
    std::uint64_t fakes = 0;
    for (Cycle t = 1; t <= 30000; ++t) {
        if (auto r = shaper.tick(t, true))
            fakes += r->isFake;
    }
    EXPECT_GT(fakes, 10u);
}

TEST(ResponseShaper, RealResponsesBeatFakes)
{
    ResponseShaper shaper(0, respCfg());
    // Latch unused credits with an idle period first.
    Cycle now = 1;
    for (; now <= 10001; ++now)
        shaper.tick(now, true);
    shaper.push(req(7), now);
    for (;; ++now) {
        if (auto r = shaper.tick(now, true)) {
            EXPECT_FALSE(r->isFake);
            EXPECT_EQ(r->id, 7u);
            break;
        }
        ASSERT_LT(now, 60000u);
    }
}

// ----------------------------------------------------------- monitors

TEST(Monitor, RecordsGapsNotAbsolutes)
{
    DistributionMonitor mon({0, 10, 100});
    mon.record(1000);
    mon.record(1005); // gap 5 -> bin 0
    mon.record(1055); // gap 50 -> bin 1
    mon.record(1255); // gap 200 -> bin 2
    EXPECT_EQ(mon.histogram().count(0), 1u);
    EXPECT_EQ(mon.histogram().count(1), 1u);
    EXPECT_EQ(mon.histogram().count(2), 1u);
    EXPECT_EQ(mon.count(), 3u) << "first event has no gap";
}

TEST(Monitor, LoggingCapturesEvents)
{
    DistributionMonitor mon({0, 10});
    mon.setLogging(true);
    mon.record(5, false);
    mon.record(9, true);
    ASSERT_EQ(mon.events().size(), 2u);
    EXPECT_EQ(mon.events()[0].at, 5u);
    EXPECT_FALSE(mon.events()[0].fake);
    EXPECT_TRUE(mon.events()[1].fake);
    mon.clear();
    EXPECT_TRUE(mon.events().empty());
    EXPECT_EQ(mon.count(), 0u);
}

} // namespace
} // namespace camo::shaper
