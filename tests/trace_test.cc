/** @file Tests for the synthetic workloads and covert-channel traces. */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hard/error.h"
#include "src/trace/covert.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"
#include "src/trace/workloads.h"

namespace camo::trace {
namespace {

// ---------------------------------------------------------- workloads

TEST(Workloads, RegistryHasElevenNames)
{
    EXPECT_EQ(workloadNames().size(), 11u);
    for (const auto &name : workloadNames()) {
        EXPECT_TRUE(isKnownWorkload(name)) << name;
        const auto p = workloadParams(name);
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.memPerKiloInstr, 0.0);
        EXPECT_GT(p.coldFrac, 0.0);
        EXPECT_LE(p.coldFrac, 1.0);
    }
    EXPECT_TRUE(isKnownWorkload("probe"));
    EXPECT_TRUE(isKnownWorkload("covert:2AAAAAAA"));
    EXPECT_FALSE(isKnownWorkload("quake3"));
}

TEST(Workloads, IntensityOrderingMatchesPaper)
{
    // mcf is the most memory-intensive; sjeng among the least.
    const double mcf =
        workloadParams("mcf").coldFrac * workloadParams("mcf").memPerKiloInstr;
    const double astar = workloadParams("astar").coldFrac *
                         workloadParams("astar").memPerKiloInstr;
    const double sjeng = workloadParams("sjeng").coldFrac *
                         workloadParams("sjeng").memPerKiloInstr;
    EXPECT_GT(mcf, astar);
    EXPECT_GT(astar, sjeng);
}

TEST(Workloads, MakeWorkloadRespectsAddrBase)
{
    auto w = makeWorkload("mcf", 1, 1ULL << 41);
    for (int i = 0; i < 1000; ++i) {
        const auto item = w->next(static_cast<Cycle>(i));
        if (item.hasMemOp()) {
            EXPECT_GE(item.addr, 1ULL << 41);
        }
    }
}

TEST(Workloads, UnknownNameRaisesConfigError)
{
    EXPECT_THROW(makeWorkload("nope", 1, 0), hard::ConfigError);
    EXPECT_THROW(makeWorkload("covert:XYZ", 1, 0), hard::ConfigError);
    try {
        makeWorkload("covert:XYZ", 1, 0);
        FAIL() << "expected hard::ConfigError";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bad covert key"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("token 'XYZ' at byte 7"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------- synthetic

TEST(Synthetic, DeterministicForSeed)
{
    const auto params = workloadParams("gcc");
    SyntheticWorkload a(params, 7), b(params, 7);
    for (int i = 0; i < 2000; ++i) {
        const auto ia = a.next(0), ib = b.next(0);
        ASSERT_EQ(ia.addr, ib.addr);
        ASSERT_EQ(ia.gapInstrs, ib.gapInstrs);
        ASSERT_EQ(ia.isWrite, ib.isWrite);
    }
}

TEST(Synthetic, MemoryDensityTracksParameter)
{
    WorkloadParams p;
    p.memPerKiloInstr = 200;
    p.coldFrac = 0.01;
    SyntheticWorkload w(p, 3);
    std::uint64_t instrs = 0, mems = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto item = w.next(0);
        instrs += item.gapInstrs + (item.hasMemOp() ? 1 : 0);
        mems += item.hasMemOp();
    }
    const double per_kilo = 1000.0 * mems / instrs;
    EXPECT_NEAR(per_kilo, 200.0, 40.0);
}

TEST(Synthetic, ColdAccessesLeaveHotSet)
{
    WorkloadParams p;
    p.coldFrac = 0.5;
    p.hotBytes = 4096;
    SyntheticWorkload w(p, 5);
    std::uint64_t cold = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto item = w.next(0);
        if (!item.hasMemOp())
            continue;
        ++total;
        if (item.addr >= p.addrBase + p.hotBytes)
            ++cold;
    }
    EXPECT_GT(static_cast<double>(cold) / total, 0.3);
}

TEST(Synthetic, SequentialModeWalksLines)
{
    WorkloadParams p;
    p.coldFrac = 1.0;
    p.seqFrac = 1.0;
    p.burstContinue = 0.0;
    p.memPerKiloInstr = 1000;
    SyntheticWorkload w(p, 5);
    Addr prev = 0;
    int seq = 0, total = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto item = w.next(0);
        if (!item.hasMemOp())
            continue;
        if (prev != 0 && item.addr == prev + 64)
            ++seq;
        prev = item.addr;
        ++total;
    }
    EXPECT_GT(static_cast<double>(seq) / total, 0.95);
}

TEST(Synthetic, PhasesToggle)
{
    WorkloadParams p;
    p.highPhaseMeanInstrs = 1000;
    p.lowPhaseMeanInstrs = 1000;
    SyntheticWorkload w(p, 11);
    bool saw_high = false, saw_low = false;
    for (int i = 0; i < 50000; ++i) {
        w.next(0);
        (w.inHighPhase() ? saw_high : saw_low) = true;
    }
    EXPECT_TRUE(saw_high);
    EXPECT_TRUE(saw_low);
}

// -------------------------------------------------------------- covert

TEST(KeyBits, MsbFirst)
{
    const auto bits = keyBits(0x80000001u);
    ASSERT_EQ(bits.size(), 32u);
    EXPECT_TRUE(bits.front());
    EXPECT_FALSE(bits[1]);
    EXPECT_TRUE(bits.back());

    const auto nibble = keyBits(0xAu, 4);
    EXPECT_EQ(nibble, (std::vector<bool>{true, false, true, false}));
}

TEST(CovertSender, OnePulsePerBit)
{
    CovertSenderParams p;
    p.key = keyBits(0xCu, 4); // 1100
    p.pulseCycles = 1000;
    CovertSender sender(p);

    // Simulate time passing; count memory ops per pulse window.
    std::map<std::uint64_t, std::uint64_t> ops_per_pulse;
    Cycle now = 0;
    while (now < 8000) {
        const auto item = sender.next(now);
        now += item.waitCycles + item.gapInstrs + 1;
        if (item.hasMemOp())
            ++ops_per_pulse[now / p.pulseCycles];
    }
    // Pulses 0,1 (bits 1,1) carry traffic; 2,3 (bits 0,0) are silent
    // (up to one boundary-spill op); the pattern repeats at 4,5.
    EXPECT_GT(ops_per_pulse[0], 10u);
    EXPECT_GT(ops_per_pulse[1], 10u);
    EXPECT_LE(ops_per_pulse[2], 1u);
    EXPECT_LE(ops_per_pulse[3], 1u);
    EXPECT_GT(ops_per_pulse[4], 10u);
}

TEST(CovertSender, WritesWalkCacheLines)
{
    CovertSenderParams p;
    p.key = {true};
    p.pulseCycles = 10000;
    CovertSender sender(p);
    Addr prev = 0;
    for (int i = 0; i < 100; ++i) {
        const auto item = sender.next(static_cast<Cycle>(i * 9));
        ASSERT_TRUE(item.hasMemOp());
        EXPECT_TRUE(item.isWrite);
        if (prev) {
            EXPECT_EQ(item.addr, prev + 64);
        }
        prev = item.addr;
    }
}

TEST(Probe, FixedCadence)
{
    ProbeParams p;
    p.probeEveryCycles = 100;
    ProbeWorkload probe(p);
    Cycle now = 0;
    std::vector<Cycle> probe_times;
    for (int i = 0; i < 50; ++i) {
        const auto item = probe.next(now);
        now += item.waitCycles;
        ASSERT_TRUE(item.hasMemOp());
        probe_times.push_back(now);
        now += 3; // some execution jitter
    }
    for (std::size_t i = 1; i < probe_times.size(); ++i) {
        const Cycle gap = probe_times[i] - probe_times[i - 1];
        EXPECT_EQ(gap, 100u) << "at " << i;
    }
}

TEST(Probe, StrideWrapsWithinRegion)
{
    ProbeParams p;
    p.regionBytes = 1 << 20;
    ProbeWorkload probe(p);
    for (int i = 0; i < 2000; ++i) {
        const auto item = probe.next(static_cast<Cycle>(i * 200));
        ASSERT_GE(item.addr, p.base);
        ASSERT_LT(item.addr, p.base + p.regionBytes);
    }
}

} // namespace
} // namespace camo::trace
