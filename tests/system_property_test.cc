/** @file System-level property sweep: every mitigation x several
 *  workload mixes upholds the same invariants. */

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo::sim {
namespace {

using Param = std::tuple<Mitigation, std::string, std::string>;

class MitigationSweep : public ::testing::TestWithParam<Param>
{
};

TEST_P(MitigationSweep, InvariantsHold)
{
    const auto [mit, adv, victim] = GetParam();
    SystemConfig cfg = paperConfig();
    cfg.mitigation = mit;
    cfg.recordLatencies = true;
    System system(cfg, adversaryMix(adv, victim));
    system.run(40000);

    std::uint64_t total_served = 0;
    for (std::uint32_t i = 0; i < system.numCores(); ++i) {
        // Progress: every core retires instructions.
        EXPECT_GT(system.coreAt(i).retired(), 0u) << "core " << i;
        // Conservation: a core never receives more real read
        // responses than LLC-miss events it generated (+1 for the
        // gap-counting monitor).
        EXPECT_LE(system.servedReads(i),
                  system.intrinsicMonitor(i).count() + 1)
            << "core " << i;
        // Latency log is time ordered and plausibly bounded below.
        const auto &log = system.latencyLog(i);
        for (std::size_t k = 1; k < log.size(); ++k)
            ASSERT_GE(log[k].at, log[k - 1].at);
        for (const auto &s : log)
            ASSERT_GE(s.latency, 10u) << "impossibly fast response";
        total_served += system.servedReads(i);
    }
    EXPECT_GT(total_served, 0u);

    // The DRAM device never fell behind on refresh.
    EXPECT_LE(system.memory().channel(0).device().refreshDebt(
                  0, system.memory().channel(0).dramCycle()),
              2u);
}

TEST_P(MitigationSweep, DeterministicAcrossRuns)
{
    const auto [mit, adv, victim] = GetParam();
    SystemConfig cfg = paperConfig();
    cfg.mitigation = mit;
    cfg.seed = 99;
    const auto a = runConfig(cfg, adversaryMix(adv, victim), 20000);
    const auto b = runConfig(cfg, adversaryMix(adv, victim), 20000);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ASSERT_EQ(a.retired[i], b.retired[i]) << "core " << i;
        ASSERT_EQ(a.servedReads[i], b.servedReads[i]) << "core " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MitigationSweep,
    ::testing::Combine(
        ::testing::Values(Mitigation::None, Mitigation::CS,
                          Mitigation::ReqC, Mitigation::RespC,
                          Mitigation::BDC, Mitigation::TP,
                          Mitigation::FS),
        ::testing::Values(std::string("bzip"), std::string("probe")),
        ::testing::Values(std::string("mcf"), std::string("apache"))),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name =
            std::string(mitigationName(std::get<0>(info.param))) + "_" +
            std::get<1>(info.param) + "_" + std::get<2>(info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_'; // gtest names must be [A-Za-z0-9_]
        }
        return name;
    });

/** Shaped cores must conform to the programmed distribution whenever
 *  their demand saturates the budget (the Figure 11 property, across
 *  workloads). */
class ConformanceSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ConformanceSweep, SaturatedShapedTrafficMatchesProgram)
{
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::ReqC;
    cfg.numCores = 1;
    System system(cfg, {GetParam()});
    system.run(300000);

    const auto desired = shaper::BinConfig::desired();
    Histogram target(desired.edges);
    for (std::size_t i = 0; i < desired.numBins(); ++i)
        target.add(desired.edges[i], desired.credits[i]);
    const double tvd = system.requestShaper(0)
                           ->postMonitor()
                           .histogram()
                           .totalVariationDistance(target);
    EXPECT_LT(tvd, 0.12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ConformanceSweep,
    ::testing::Values("mcf", "libqt", "omnetpp", "apache", "astar",
                      "gcc"));

} // namespace
} // namespace camo::sim
