/** @file Unit and property tests for the DDR3 device model. */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dram/address.h"
#include "src/dram/device.h"

namespace camo::dram {
namespace {

DramOrganization
tableIiOrg()
{
    DramOrganization org;
    org.channels = 1;
    org.ranksPerChannel = 1;
    org.banksPerRank = 8;
    org.rowBufferBytes = 8192;
    org.lineBytes = 64;
    return org;
}

// ------------------------------------------------------ AddressMapper

TEST(AddressMapper, DecodeFieldsInRange)
{
    const auto org = tableIiOrg();
    for (const auto scheme : {MappingScheme::RowRankBankCol,
                              MappingScheme::RowColRankBank}) {
        AddressMapper mapper(org, scheme);
        Rng rng(3);
        for (int i = 0; i < 2000; ++i) {
            const Addr a = rng.next() & ((1ULL << 46) - 1);
            const DramAddress da = mapper.decode(a);
            ASSERT_LT(da.bank, org.banksPerRank);
            ASSERT_LT(da.rank, org.ranksPerChannel);
            ASSERT_LT(da.row, org.rowsPerBank);
            ASSERT_LT(da.column, org.columnsPerRow());
        }
    }
}

TEST(AddressMapper, EncodeDecodeRoundTrip)
{
    const auto org = tableIiOrg();
    for (const auto scheme : {MappingScheme::RowRankBankCol,
                              MappingScheme::RowColRankBank}) {
        AddressMapper mapper(org, scheme);
        Rng rng(5);
        for (int i = 0; i < 2000; ++i) {
            DramAddress da;
            da.bank = static_cast<std::uint32_t>(
                rng.below(org.banksPerRank));
            da.row = static_cast<std::uint32_t>(
                rng.below(org.rowsPerBank));
            da.column = static_cast<std::uint32_t>(
                rng.below(org.columnsPerRow()));
            const Addr a = mapper.encode(da);
            const DramAddress back = mapper.decode(a);
            ASSERT_EQ(back, da) << "addr=" << a;
        }
    }
}

TEST(AddressMapper, SequentialLinesStayInRowForRowRankBankCol)
{
    AddressMapper mapper(tableIiOrg(), MappingScheme::RowRankBankCol);
    const DramAddress first = mapper.decode(0);
    for (Addr a = 64; a < 8192; a += 64) {
        const DramAddress da = mapper.decode(a);
        EXPECT_EQ(da.row, first.row);
        EXPECT_EQ(da.bank, first.bank);
    }
}

TEST(AddressMapper, SequentialLinesInterleaveBanksForRowColRankBank)
{
    AddressMapper mapper(tableIiOrg(), MappingScheme::RowColRankBank);
    std::vector<std::uint32_t> banks;
    for (Addr a = 0; a < 8 * 64; a += 64)
        banks.push_back(mapper.decode(a).bank);
    for (std::uint32_t b = 0; b < 8; ++b)
        EXPECT_EQ(banks[b], b);
}

TEST(AddressMapper, ChannelRotatesAtLineBoundaries)
{
    auto org = tableIiOrg();
    org.channels = 4;
    AddressMapper mapper(org, MappingScheme::RowColRankBank);
    for (Addr line = 0; line < 64; ++line) {
        const Addr base = line * org.lineBytes;
        const auto expect = static_cast<std::uint32_t>(line % 4);
        // Every byte of a line shares its channel...
        EXPECT_EQ(mapper.channelOf(base), expect);
        EXPECT_EQ(mapper.channelOf(base + 1), expect);
        EXPECT_EQ(mapper.channelOf(base + org.lineBytes - 1), expect);
        // ...and the very next byte starts the next channel.
        EXPECT_EQ(mapper.channelOf(base + org.lineBytes),
                  static_cast<std::uint32_t>((line + 1) % 4));
    }
}

TEST(AddressMapper, NonPowerOfTwoChannelCountDecodes)
{
    auto org = tableIiOrg();
    org.channels = 3;
    for (const auto scheme : {MappingScheme::RowRankBankCol,
                              MappingScheme::RowColRankBank}) {
        AddressMapper mapper(org, scheme);
        Rng rng(11);
        for (int i = 0; i < 2000; ++i) {
            const Addr a = rng.next() & ((1ULL << 46) - 1);
            const std::uint32_t ch = mapper.channelOf(a);
            ASSERT_LT(ch, 3u);
            ASSERT_EQ(ch, (a / org.lineBytes) % 3);
            ASSERT_EQ(mapper.decode(a).channel, ch);
            // stripChannel keeps the within-line offset intact.
            ASSERT_EQ(mapper.stripChannel(a) % org.lineBytes,
                      a % org.lineBytes);
        }
    }
}

TEST(AddressMapper, StripChannelMatchesPerChannelDecodeNonPow2)
{
    // A 3-channel memory system hands each controller a channels==1
    // organization and channel-local addresses: the local decode must
    // agree with the full decode on every other coordinate.
    auto org = tableIiOrg();
    org.channels = 3;
    auto local_org = org;
    local_org.channels = 1;
    AddressMapper full(org, MappingScheme::RowColRankBank);
    AddressMapper local(local_org, MappingScheme::RowColRankBank);
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & ((1ULL << 46) - 1);
        const DramAddress da = full.decode(a);
        const DramAddress lda = local.decode(full.stripChannel(a));
        ASSERT_EQ(lda.rank, da.rank);
        ASSERT_EQ(lda.bank, da.bank);
        ASSERT_EQ(lda.row, da.row);
        ASSERT_EQ(lda.column, da.column);
        ASSERT_EQ(lda.channel, 0u);
    }
}

TEST(AddressMapper, EncodeDecodeRoundTripWithNonPow2Channels)
{
    auto org = tableIiOrg();
    org.channels = 3;
    for (const auto scheme : {MappingScheme::RowRankBankCol,
                              MappingScheme::RowColRankBank}) {
        AddressMapper mapper(org, scheme);
        Rng rng(17);
        for (int i = 0; i < 2000; ++i) {
            DramAddress da;
            da.channel = static_cast<std::uint32_t>(rng.below(3));
            da.bank = static_cast<std::uint32_t>(
                rng.below(org.banksPerRank));
            da.row = static_cast<std::uint32_t>(
                rng.below(org.rowsPerBank));
            da.column = static_cast<std::uint32_t>(
                rng.below(org.columnsPerRow()));
            const Addr a = mapper.encode(da);
            ASSERT_EQ(mapper.decode(a), da) << "addr=" << a;
        }
    }
}

// --------------------------------------------------------- DramDevice

struct DeviceFixture : ::testing::Test
{
    DeviceFixture() : dev(tableIiOrg(), DramTiming{}) {}

    /** Advance to the first cycle >= from where cmd can issue. */
    std::uint64_t
    issueWhenReady(Cmd cmd, const DramAddress &da, std::uint64_t from,
                   IssueResult *out = nullptr)
    {
        std::uint64_t t = from;
        while (!dev.canIssue(cmd, da, t)) {
            ++t;
            EXPECT_LT(t, from + 100000) << "command never became legal";
        }
        const auto result = dev.issue(cmd, da, t);
        if (out)
            *out = result;
        return t;
    }

    DramTiming timing;
    DramDevice dev;
};

TEST_F(DeviceFixture, ReadNeedsActivatedRow)
{
    const DramAddress da{0, 0, 2, 77, 3};
    EXPECT_FALSE(dev.canIssue(Cmd::RD, da, 10));
    issueWhenReady(Cmd::ACT, da, 10);
    EXPECT_TRUE(dev.isRowOpen(da));
    EXPECT_TRUE(dev.isRowHit(da));
}

TEST_F(DeviceFixture, TRcdEnforced)
{
    const DramAddress da{0, 0, 0, 5, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    EXPECT_FALSE(dev.canIssue(Cmd::RD, da, act_at + timing.tRCD - 1));
    EXPECT_TRUE(dev.canIssue(Cmd::RD, da, act_at + timing.tRCD));
    EXPECT_FALSE(dev.canIssue(Cmd::WR, da, act_at + timing.tRCD - 1));
}

TEST_F(DeviceFixture, TRasEnforcedBeforePrecharge)
{
    const DramAddress da{0, 0, 1, 9, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    EXPECT_FALSE(dev.canIssue(Cmd::PRE, da, act_at + timing.tRAS - 1));
    EXPECT_TRUE(dev.canIssue(Cmd::PRE, da, act_at + timing.tRAS));
}

TEST_F(DeviceFixture, TRpEnforcedAfterPrecharge)
{
    const DramAddress da{0, 0, 1, 9, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    const auto pre_at = issueWhenReady(Cmd::PRE, da, act_at + 1);
    EXPECT_FALSE(dev.canIssue(Cmd::ACT, da, pre_at + timing.tRP - 1));
    EXPECT_TRUE(dev.canIssue(Cmd::ACT, da, pre_at + timing.tRP));
}

TEST_F(DeviceFixture, TRcEnforcedActToAct)
{
    DramAddress da{0, 0, 3, 1, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    issueWhenReady(Cmd::PRE, da, act_at + timing.tRAS);
    // Same bank, other row: the second ACT waits for tRC from the
    // first ACT even if tRP has elapsed.
    DramAddress other = da;
    other.row = 2;
    std::uint64_t t = act_at;
    while (!dev.canIssue(Cmd::ACT, other, t))
        ++t;
    EXPECT_GE(t, act_at + timing.tRC);
}

TEST_F(DeviceFixture, TRrdBetweenBanks)
{
    const DramAddress a{0, 0, 0, 1, 0}, b{0, 0, 1, 1, 0};
    const auto t0 = issueWhenReady(Cmd::ACT, a, 0);
    EXPECT_FALSE(dev.canIssue(Cmd::ACT, b, t0 + timing.tRRD - 1));
    EXPECT_TRUE(dev.canIssue(Cmd::ACT, b, t0 + timing.tRRD));
}

TEST_F(DeviceFixture, TFawLimitsFourActivates)
{
    std::uint64_t last = 0;
    std::uint64_t first = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
        const DramAddress da{0, 0, b, 1, 0};
        last = issueWhenReady(Cmd::ACT, da, last + (b ? 1 : 0));
        if (b == 0)
            first = last;
    }
    // The fifth ACT must wait for the tFAW window to pass.
    const DramAddress fifth{0, 0, 4, 1, 0};
    std::uint64_t t = last + timing.tRRD;
    while (!dev.canIssue(Cmd::ACT, fifth, t))
        ++t;
    EXPECT_GE(t, first + timing.tFAW);
}

TEST_F(DeviceFixture, ReadDataTiming)
{
    const DramAddress da{0, 0, 0, 3, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    IssueResult r;
    const auto rd_at =
        issueWhenReady(Cmd::RD, da, act_at + timing.tRCD, &r);
    EXPECT_EQ(r.dataDoneCycle,
              rd_at + timing.tCL + timing.dataCycles());
    EXPECT_TRUE(r.rowHit);
}

TEST_F(DeviceFixture, TCcdBetweenColumnCommands)
{
    const DramAddress da{0, 0, 0, 3, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    const auto rd1 = issueWhenReady(Cmd::RD, da, act_at + timing.tRCD);
    DramAddress next = da;
    next.column = 1;
    EXPECT_FALSE(dev.canIssue(Cmd::RD, next, rd1 + timing.tCCD - 1));
    std::uint64_t t = rd1 + timing.tCCD;
    while (!dev.canIssue(Cmd::RD, next, t))
        ++t;
    // May be delayed further by data-bus occupancy, never earlier.
    EXPECT_GE(t, rd1 + timing.tCCD);
}

TEST_F(DeviceFixture, WriteToReadTurnaround)
{
    const DramAddress da{0, 0, 0, 3, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    IssueResult w;
    const auto wr_at =
        issueWhenReady(Cmd::WR, da, act_at + timing.tRCD, &w);
    // RD must wait tWTR after the write data completes.
    DramAddress next = da;
    next.column = 1;
    std::uint64_t t = wr_at + 1;
    while (!dev.canIssue(Cmd::RD, next, t))
        ++t;
    EXPECT_GE(t, w.dataDoneCycle + timing.tWTR);
}

TEST_F(DeviceFixture, WriteRecoveryBeforePrecharge)
{
    const DramAddress da{0, 0, 0, 3, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    IssueResult w;
    issueWhenReady(Cmd::WR, da, act_at + timing.tRCD, &w);
    std::uint64_t t = act_at + timing.tRAS;
    while (!dev.canIssue(Cmd::PRE, da, t))
        ++t;
    EXPECT_GE(t, w.dataDoneCycle + timing.tWR);
}

TEST_F(DeviceFixture, DataBusBurstsNeverOverlap)
{
    // Alternate reads between two banks; data windows must be
    // disjoint on the shared bus.
    std::uint64_t t = 0;
    std::uint64_t prev_data_end = 0;
    for (int i = 0; i < 20; ++i) {
        const DramAddress da{0, 0, static_cast<std::uint32_t>(i % 2),
                             4, static_cast<std::uint32_t>(i)};
        if (!dev.isRowOpen(da))
            t = issueWhenReady(Cmd::ACT, da, t) + 1;
        IssueResult r;
        t = issueWhenReady(Cmd::RD, da, t, &r) + 1;
        const std::uint64_t data_start =
            r.dataDoneCycle - timing.dataCycles();
        EXPECT_GE(data_start, prev_data_end)
            << "burst " << i << " overlaps the previous one";
        prev_data_end = r.dataDoneCycle;
    }
}

TEST_F(DeviceFixture, RefreshRequiresAllBanksClosed)
{
    const DramAddress da{0, 0, 2, 7, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    EXPECT_FALSE(dev.canIssue(Cmd::REF, {0, 0, 0, 0, 0},
                              act_at + timing.tRAS + timing.tRP + 10));
    const auto pre_at = issueWhenReady(Cmd::PRE, da, act_at + 1);
    std::uint64_t t = pre_at + timing.tRP;
    while (!dev.canIssue(Cmd::REF, {0, 0, 0, 0, 0}, t))
        ++t;
    dev.issue(Cmd::REF, {0, 0, 0, 0, 0}, t);
    // tRFC blocks every bank.
    EXPECT_FALSE(dev.canIssue(Cmd::ACT, da, t + timing.tRFC - 1));
    EXPECT_TRUE(dev.canIssue(Cmd::ACT, da, t + timing.tRFC));
}

TEST_F(DeviceFixture, RefreshDebtAccounting)
{
    EXPECT_EQ(dev.refreshDebt(0, timing.tREFI - 1), 0u);
    EXPECT_EQ(dev.refreshDebt(0, timing.tREFI), 1u);
    EXPECT_EQ(dev.refreshDebt(0, 3 * timing.tREFI + 5), 3u);
    std::uint64_t t = timing.tREFI;
    while (!dev.canIssue(Cmd::REF, {0, 0, 0, 0, 0}, t))
        ++t;
    dev.issue(Cmd::REF, {0, 0, 0, 0, 0}, t);
    EXPECT_EQ(dev.refreshDebt(0, timing.tREFI), 0u);
}

TEST_F(DeviceFixture, CommandBusOneCommandPerCycle)
{
    const DramAddress a{0, 0, 0, 1, 0}, b{0, 0, 5, 1, 0};
    const auto t = issueWhenReady(Cmd::ACT, a, timing.tRRD + 1);
    // Any other command in the same cycle is rejected (command bus).
    EXPECT_FALSE(dev.canIssue(Cmd::ACT, b, t));
    EXPECT_FALSE(dev.canIssue(Cmd::PRE, a, t));
}

TEST_F(DeviceFixture, StatsCountCommands)
{
    const DramAddress da{0, 0, 0, 1, 0};
    const auto act_at = issueWhenReady(Cmd::ACT, da, 0);
    issueWhenReady(Cmd::RD, da, act_at + timing.tRCD);
    EXPECT_EQ(dev.stats().counter("cmd.ACT"), 1u);
    EXPECT_EQ(dev.stats().counter("cmd.RD"), 1u);
}

TEST_F(DeviceFixture, IllegalIssuePanics)
{
    const DramAddress da{0, 0, 0, 1, 0};
    EXPECT_DEATH(dev.issue(Cmd::RD, da, 0), "illegal RD");
}

/**
 * Property: a random but legality-gated command stream never produces
 * overlapping data bursts and row state stays consistent.
 */
class DeviceRandomProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DeviceRandomProperty, RandomLegalStreamKeepsInvariants)
{
    DramTiming timing;
    DramDevice dev(tableIiOrg(), timing);
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);
    std::uint64_t prev_data_end = 0;
    std::uint64_t issued = 0;

    for (std::uint64_t t = 0; t < 30000 && issued < 600; ++t) {
        DramAddress da{0, 0,
                       static_cast<std::uint32_t>(rng.below(8)),
                       static_cast<std::uint32_t>(rng.below(64)),
                       static_cast<std::uint32_t>(rng.below(128))};
        const int choice = static_cast<int>(rng.below(4));
        const Cmd cmd = choice == 0   ? Cmd::ACT
                        : choice == 1 ? Cmd::PRE
                        : choice == 2 ? Cmd::RD
                                      : Cmd::WR;
        if (!dev.canIssue(cmd, da, t))
            continue;
        const auto r = dev.issue(cmd, da, t);
        ++issued;
        if (cmd == Cmd::RD || cmd == Cmd::WR) {
            ASSERT_TRUE(dev.isRowHit(da));
            const std::uint64_t start =
                r.dataDoneCycle - timing.dataCycles();
            ASSERT_GE(start, prev_data_end);
            prev_data_end = r.dataDoneCycle;
        }
        if (cmd == Cmd::ACT) {
            ASSERT_TRUE(dev.isRowOpen(da));
        }
        if (cmd == Cmd::PRE) {
            ASSERT_FALSE(dev.isRowOpen(da));
        }
    }
    EXPECT_GT(issued, 100u) << "stream should make progress";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceRandomProperty,
                         ::testing::Range(0, 10));

} // namespace
} // namespace camo::dram
