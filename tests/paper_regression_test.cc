/** @file Headline-result regressions: fast, scaled-down versions of
 *  the paper's key findings, so a code change that breaks the
 *  reproduction fails CI rather than only the (slow) benches.
 *  EXPERIMENTS.md records the full-scale numbers. */

#include <string>

#include <gtest/gtest.h>

#include "src/security/covert_receiver.h"
#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/covert.h"

namespace camo::sim {
namespace {

TEST(PaperRegression, CovertChannelMitigated)
{
    // SIV-G / Figs. 14-15 (covert keys are 32-bit; see
    // trace::makeWorkload).
    constexpr Cycle pulse = 20000;
    constexpr std::size_t bits = 32;
    auto attack = [&](bool defended) {
        SystemConfig cfg = paperConfig();
        cfg.recordLatencies = true;
        if (defended) {
            cfg.mitigation = Mitigation::ReqC;
            cfg.shapeCore = {true, false, false, false};
            cfg.reqBins = shaper::BinConfig::desired(8, 1.5, 2500);
        }
        System system(cfg,
                      {"covert:2AAAAAAA", "probe", "sjeng", "sjeng"});
        system.run(pulse * (bits + 4));
        security::CovertDecoderConfig dec;
        dec.windowCycles = pulse;
        const auto decoded =
            security::decodeCovert(system.latencyLog(1), dec, bits);
        return security::bitErrorRate(decoded.bits,
                                      trace::keyBits(0x2AAAAAAA));
    };
    const double before = attack(false);
    const double after = attack(true);
    EXPECT_LT(before, 0.2) << "the attack must work undefended";
    EXPECT_GT(after, 2.0 * before) << "Camouflage must degrade it";
}

TEST(PaperRegression, ReqcBeatsStaticLimiterOnBurstyApp)
{
    // Fig. 12's mechanism at one point: same budget, bursty app.
    auto ipc_of = [](Mitigation mit) {
        SystemConfig cfg = paperConfig();
        cfg.numCores = 1;
        cfg.mitigation = mit;
        cfg.csInterval = 40;
        cfg.fakeTraffic = false;
        if (mit == Mitigation::ReqC) {
            cfg.reqBins = shaper::BinConfig::geometric(
                {125, 62, 31, 16, 8, 4, 2, 1, 1, 0}, 20, 1.7, 10000);
        }
        return runConfig(cfg, {"apache"}, 400000, 40000).ipc[0];
    };
    const double cs = ipc_of(Mitigation::CS);
    const double reqc = ipc_of(Mitigation::ReqC);
    EXPECT_GT(reqc, 1.1 * cs);
}

TEST(PaperRegression, CamouflageCheaperThanTpAndFs)
{
    // Fig. 13's ranking at one mix, with a hand-set (non-GA) BDC
    // budget near the fair share.
    const auto mix = adversaryMix("bzip", "astar");
    SystemConfig base = paperConfig();
    const auto base_m = runConfig(base, mix, 200000, 20000);

    auto avg_slowdown = [&](SystemConfig cfg) {
        const auto m = runConfig(cfg, mix, 200000, 20000);
        const auto s = slowdownVs(base_m, m);
        double sum = 0;
        for (const double v : s)
            sum += v;
        return sum / static_cast<double>(s.size());
    };

    SystemConfig tp = paperConfig();
    tp.mitigation = Mitigation::TP;
    SystemConfig fs = paperConfig();
    fs.mitigation = Mitigation::FS;
    SystemConfig bdc = paperConfig();
    bdc.mitigation = Mitigation::BDC;
    for (auto &c : bdc.reqBins.credits)
        c *= 2; // ~110 credits: near the measured demand
    for (auto &c : bdc.respBins.credits)
        c *= 2;

    const double tp_s = avg_slowdown(tp);
    const double fs_s = avg_slowdown(fs);
    const double bdc_s = avg_slowdown(bdc);
    EXPECT_LT(bdc_s, tp_s);
    EXPECT_LT(bdc_s, fs_s);
}

TEST(PaperRegression, BusObserverLearnsNothingUnderReqc)
{
    // Table I's pin/bus column at one point.
    auto bus_leak = [](Mitigation mit) {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = mit;
        cfg.recordTraffic = true;
        if (mit != Mitigation::None)
            cfg.shapeCore = {false, true, true, true};
        System system(cfg, adversaryMix("probe", "apache"));
        system.run(1000000);
        return security::computeWindowedCrossMiCounts(
                   system.intrinsicMonitor(1).events(),
                   system.busMonitor(1).events(), 20000, 4)
            .miBits;
    };
    const double unshaped = bus_leak(Mitigation::None);
    const double shaped = bus_leak(Mitigation::ReqC);
    EXPECT_GT(unshaped, 0.5);
    EXPECT_LT(shaped, unshaped / 10.0);
}

TEST(PaperRegression, AdversaryCannotTellNeighboursApartUnderRespc)
{
    // Fig. 9's flatness, summarized as mean-latency closeness.
    auto adversary_latency = [](const char *victim, bool respc,
                                const shaper::BinConfig *bins) {
        SystemConfig cfg = paperConfig();
        if (respc) {
            cfg.mitigation = Mitigation::RespC;
            cfg.shapeCore = {true, false, false, false};
            cfg.respBins = *bins;
        }
        System s(cfg, adversaryMix("bzip", victim));
        s.run(300000);
        return s.avgReadLatency(0);
    };

    const double fr_astar = adversary_latency("astar", false, nullptr);
    const double fr_mcf = adversary_latency("mcf", false, nullptr);
    const double fr_gap = std::abs(fr_mcf - fr_astar);

    SystemConfig probe_cfg = paperConfig();
    probe_cfg.recordTraffic = true;
    System probe(probe_cfg, adversaryMix("bzip", "mcf"));
    probe.run(200000);
    const auto bins = binsFromMonitor(probe.responseMonitor(0), 200000,
                                      10000, 1.0);

    const double c_astar = adversary_latency("astar", true, &bins);
    const double c_mcf = adversary_latency("mcf", true, &bins);
    const double camo_gap = std::abs(c_mcf - c_astar);

    EXPECT_GT(fr_gap, 30.0) << "the channel must exist undefended";
    EXPECT_LT(camo_gap, fr_gap / 2.0);
}

} // namespace
} // namespace camo::sim
