/**
 * @file
 * Attack-scenario subsystem tests: the trace-ingestion frontend
 * (golden-fixture round-trips, the malformed-input rejection matrix,
 * jobs=1 == jobs=N bit-identity), the RowHammer defense model, the
 * scenario registry (including byte-equality between the embedded
 * topologies and the shipped examples/topologies/ files and the
 * daemon's JobSpec scenario field), and the directional channel
 * claims the catalog makes: each channel opens unshaped and closes
 * measurably under shaping.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dram/rowhammer.h"
#include "src/hard/error.h"
#include "src/obs/json.h"
#include "src/scenario/scenario.h"
#include "src/server/job.h"
#include "src/sim/parallel.h"
#include "src/sim/topology.h"
#include "src/trace/covert.h"
#include "src/trace/file_trace.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(CAMO_GOLDEN_DIR) + "/" + name;
}

// ---------------------------------------------------------------
// DRAMSim2 parsing
// ---------------------------------------------------------------

TEST(FileTraceDramSim2, GoldenFixtureRoundTripsByteExact)
{
    const std::string text = readFile(goldenPath("trace_dramsim2.trc"));
    const std::vector<trace::TraceItem> items =
        trace::parseDramSim2Trace(text, "golden");
    ASSERT_EQ(items.size(), 8u);

    // First record: absolute cycle becomes the initial wait.
    EXPECT_EQ(items[0].waitCycles, 10u);
    EXPECT_EQ(items[0].addr, 0x2000u);
    EXPECT_FALSE(items[0].isWrite);
    // Later records: deltas.
    EXPECT_EQ(items[1].waitCycles, 2u);
    EXPECT_EQ(items[2].waitCycles, 18u);
    EXPECT_TRUE(items[2].isWrite);
    EXPECT_EQ(items[5].addr, 0x10040u);
    EXPECT_TRUE(items[5].isWrite);

    // The fixture is in canonical form, so format(parse(x)) == x.
    EXPECT_EQ(trace::formatDramSim2Trace(items), text);
}

TEST(FileTraceDramSim2, ToleratesCommentsAndBlankLines)
{
    const std::string messy =
        "# header comment\n"
        "\n"
        "0x2000 P_MEM_RD 10   ; trailing comment\n"
        "   0x2040 P_MEM_WR 12\n";
    const auto items = trace::parseDramSim2Trace(messy, "messy");
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[1].waitCycles, 2u);
    EXPECT_TRUE(items[1].isWrite);
}

TEST(FileTraceDramSim2, BuiltinSampleRoundTrips)
{
    const std::string &sample =
        trace::builtinSampleTrace(trace::TraceFileFormat::DramSim2);
    const auto items = trace::parseDramSim2Trace(sample, "sample");
    EXPECT_GT(items.size(), 100u);
    EXPECT_EQ(trace::formatDramSim2Trace(items), sample);
}

/** Every malformed input must raise hard::ConfigError whose message
 *  names the offending token and its byte offset. */
TEST(FileTraceDramSim2, RejectionMatrix)
{
    struct Case
    {
        const char *text;
        const char *needle; ///< must appear in the error message
    };
    const Case cases[] = {
        {"0x2000 P_MEM_RD\n", "token '0x2000' at byte 0"},
        {"0x2000 P_MEM_RD 5 extra\n", "token 'extra' at byte 18"},
        {"zzz P_MEM_RD 5\n", "bad address token 'zzz' at byte 0"},
        {"0x2000 P_MEM_XX 5\n",
         "unknown command token 'P_MEM_XX' at byte 7"},
        {"0x2000 P_MEM_RD 5x\n", "bad cycle token '5x' at byte 16"},
        {"0x2000 P_MEM_RD 50\n0x2040 P_MEM_RD 40\n",
         "non-monotonic cycle token '40' at byte 35"},
        {"# only a comment\n", "contains no memory operations"},
        {"", "contains no memory operations"},
    };
    for (const Case &c : cases) {
        try {
            trace::parseDramSim2Trace(c.text, "bad");
            FAIL() << "accepted: " << c.text;
        } catch (const hard::ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << "message '" << e.what() << "' lacks '" << c.needle
                << "'";
        }
    }
}

// ---------------------------------------------------------------
// ChampSim parsing
// ---------------------------------------------------------------

TEST(FileTraceChampSim, GoldenFixtureParses)
{
    const std::string bytes = readFile(goldenPath("trace_champsim.bin"));
    ASSERT_EQ(bytes.size(), 256u); // four 64-byte input_instr records
    const auto items = trace::parseChampSimTrace(bytes, "golden");
    // Record 0: one load; records 1-2: no memory ops (widen the gap);
    // record 3: one load + one store.
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].addr, 0x50000000u);
    EXPECT_FALSE(items[0].isWrite);
    EXPECT_EQ(items[0].gapInstrs, 0u);
    EXPECT_EQ(items[1].addr, 0x50000040u);
    EXPECT_FALSE(items[1].isWrite);
    EXPECT_EQ(items[1].gapInstrs, 2u); // the two non-memory records
    EXPECT_EQ(items[2].addr, 0x60000000u);
    EXPECT_TRUE(items[2].isWrite);
    EXPECT_EQ(items[2].gapInstrs, 0u); // same instruction as items[1]
}

TEST(FileTraceChampSim, BuiltinSampleParses)
{
    const std::string &sample =
        trace::builtinSampleTrace(trace::TraceFileFormat::ChampSim);
    EXPECT_EQ(sample.size() % 64, 0u);
    const auto items = trace::parseChampSimTrace(sample, "sample");
    EXPECT_GT(items.size(), 100u);
}

TEST(FileTraceChampSim, RejectionMatrix)
{
    try {
        trace::parseChampSimTrace("", "bad");
        FAIL() << "accepted empty trace";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("empty ChampSim trace"),
                  std::string::npos);
    }
    try {
        trace::parseChampSimTrace(std::string(65, '\0'), "bad");
        FAIL() << "accepted truncated trace";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(
            std::string(e.what()).find("truncated ChampSim record "
                                       "at byte 64"),
            std::string::npos)
            << e.what();
    }
    try {
        // One whole record with every memory slot zero.
        trace::parseChampSimTrace(std::string(64, '\0'), "bad");
        FAIL() << "accepted memory-op-free trace";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(
            std::string(e.what()).find("contains no memory operations"),
            std::string::npos);
    }
}

// ---------------------------------------------------------------
// gem5 parsing
// ---------------------------------------------------------------

TEST(FileTraceGem5, GoldenFixtureParses)
{
    const std::string text = readFile(goldenPath("trace_gem5.csv"));
    const std::vector<trace::TraceItem> items =
        trace::parseGem5Trace(text, "golden");
    // Five packets; the 128-byte WriteReq spans two 64-byte lines.
    ASSERT_EQ(items.size(), 6u);

    // First record: absolute tick becomes the initial wait.
    EXPECT_EQ(items[0].waitCycles, 1000u);
    EXPECT_EQ(items[0].addr, 0x2000u);
    EXPECT_FALSE(items[0].isWrite);
    // Later records: tick deltas.
    EXPECT_EQ(items[1].waitCycles, 10u);
    EXPECT_EQ(items[1].addr, 0x2040u);
    EXPECT_TRUE(items[1].isWrite);
    // Decimal address (gem5's native dump form).
    EXPECT_EQ(items[2].waitCycles, 30u);
    EXPECT_EQ(items[2].addr, 8192u);
    EXPECT_FALSE(items[2].isWrite);
    // 128-byte packet: first line keeps the exact address and the
    // tick delta, the continuation line is 64-aligned and immediate.
    EXPECT_EQ(items[3].waitCycles, 60u);
    EXPECT_EQ(items[3].addr, 0x3fc0u);
    EXPECT_TRUE(items[3].isWrite);
    EXPECT_EQ(items[4].waitCycles, 0u);
    EXPECT_EQ(items[4].addr, 0x4000u);
    EXPECT_TRUE(items[4].isWrite);
    // Sub-line packet within one 64-byte line: exact address kept.
    EXPECT_EQ(items[5].waitCycles, 100u);
    EXPECT_EQ(items[5].addr, 0x5010u);
    EXPECT_FALSE(items[5].isWrite);
}

TEST(FileTraceGem5, ToleratesCsvWhitespaceAndComments)
{
    const std::string messy =
        "# header comment\n"
        "\n"
        "  1000 , r , 0x2000 , 64  ; trailing comment is a comment\n"
        "1010,w,0x2040,64\n";
    // The ';' comment rule applies to whole lines only; a trailing
    // comment would corrupt the SIZE field, so keep it out of the
    // tolerated set — only per-field whitespace and full-line
    // comments must pass.
    try {
        (void)trace::parseGem5Trace(messy, "messy");
        FAIL() << "trailing comment should corrupt the size field";
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bad size"),
                  std::string::npos)
            << e.what();
    }
    const std::string clean =
        "# header comment\n"
        "\n"
        "  1000 , r , 0x2000 , 64\n"
        "; another comment style\n"
        "1010,w,0x2040,64\n";
    const auto items = trace::parseGem5Trace(clean, "clean");
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].waitCycles, 1000u);
    EXPECT_EQ(items[1].waitCycles, 10u);
    EXPECT_TRUE(items[1].isWrite);
}

TEST(FileTraceGem5, BuiltinSampleParses)
{
    const std::string &sample =
        trace::builtinSampleTrace(trace::TraceFileFormat::Gem5);
    const auto items = trace::parseGem5Trace(sample, "sample");
    EXPECT_GT(items.size(), 100u);
    // The sample includes 128-byte packets, so continuation items
    // (waitCycles == 0, 64-aligned address) must appear.
    std::size_t continuations = 0;
    for (const trace::TraceItem &item : items) {
        if (item.waitCycles == 0) {
            ++continuations;
            EXPECT_EQ(item.addr % 64, 0u);
        }
    }
    EXPECT_GT(continuations, 0u);
}

/** Same contract as the DRAMSim2 matrix: every malformed input
 *  raises hard::ConfigError naming the offending token and its
 *  absolute byte offset. */
TEST(FileTraceGem5, RejectionMatrix)
{
    struct Case
    {
        const char *text;
        const char *needle;
    };
    const Case cases[] = {
        {"1000,r,0x2000\n",
         "incomplete record (want TICK,CMD,ADDR,SIZE) at token "
         "'1000' at byte 0"},
        {"1000,r,0x2000,64,9\n",
         "unexpected trailing token '9' at byte 17"},
        {"10x0,r,0x2000,64\n", "bad tick token '10x0' at byte 0"},
        {"100,r,0x2000,64\n90,r,0x2000,64\n",
         "non-monotonic tick token '90' at byte 16"},
        {"1000,x,0x2000,64\n", "unknown command token 'x' at byte 5"},
        {"1000,,0x2000,64\n", "unknown command token '' at byte 5"},
        {"1000,r,0xZZ,64\n", "bad address token '0xZZ' at byte 7"},
        {"1000,r,12a4,64\n", "bad address token '12a4' at byte 7"},
        {"1000,r,0x2000,0\n",
         "bad size (1..4096 bytes) token '0' at byte 14"},
        {"1000,r,0x2000,4097\n",
         "bad size (1..4096 bytes) token '4097' at byte 14"},
        {"# only a comment\n", "contains no memory operations"},
        {"", "contains no memory operations"},
    };
    for (const Case &c : cases) {
        try {
            trace::parseGem5Trace(c.text, "bad");
            FAIL() << "accepted: " << c.text;
        } catch (const hard::ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << "message '" << e.what() << "' lacks '" << c.needle
                << "'";
        }
    }
}

// ---------------------------------------------------------------
// Workload-name frontend
// ---------------------------------------------------------------

TEST(TraceWorkloads, ScenarioNamesAreKnown)
{
    EXPECT_TRUE(trace::isKnownWorkload("hammer:2AAAAAAA"));
    EXPECT_TRUE(trace::isKnownWorkload("pim:5A5A5A5A:5000"));
    EXPECT_TRUE(trace::isKnownWorkload("dramsim2:@sample"));
    EXPECT_TRUE(trace::isKnownWorkload("champsim:@sample"));
    EXPECT_TRUE(trace::isKnownWorkload("gem5:@sample"));
    EXPECT_TRUE(trace::isKnownWorkload("webdiurnal"));
    EXPECT_TRUE(trace::isKnownWorkload("webdiurnal:4800"));
    EXPECT_FALSE(trace::isKnownWorkload("rowhammer"));
    EXPECT_FALSE(trace::isKnownWorkload("gem5"));
    EXPECT_FALSE(trace::isKnownWorkload("webdiurnalish"));
}

TEST(TraceWorkloads, MalformedNamesNameTokenAndOffset)
{
    struct Case
    {
        const char *name;
        const char *needle;
    };
    const Case cases[] = {
        {"hammer:XYZ", "token 'XYZ' at byte 7"},
        {"hammer:123456789",
         "bad covert key (1..8 hex digits expected)"},
        {"pim:2AAAAAAA:50", "bad PIM pulse (cycles >= 100) token '50'"},
        {"pim:2AAAAAAA:12x", "token '12x'"},
        {"dramsim2:@nope", "unknown builtin trace '@nope'"},
        {"champsim:/nonexistent/path.bin", "cannot open trace file"},
        {"gem5:@nope", "unknown builtin trace '@nope'"},
        {"gem5:/nonexistent/path.csv", "cannot open trace file"},
        {"webdiurnal:",
         "bad day length (instructions >= 24) token '' at byte 11"},
        {"webdiurnal:23",
         "bad day length (instructions >= 24) token '23' at byte 11"},
        {"webdiurnal:24x", "token '24x' at byte 11"},
    };
    for (const Case &c : cases) {
        try {
            trace::makeWorkload(c.name, 1, 0);
            FAIL() << "accepted workload " << c.name;
        } catch (const hard::ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(c.needle),
                      std::string::npos)
                << "message '" << e.what() << "' lacks '" << c.needle
                << "'";
        }
    }
}

TEST(TraceWorkloads, WebDiurnalIsDeterministicPerSeed)
{
    auto drain = [](std::uint64_t seed) {
        auto src = trace::makeWorkload("webdiurnal:4800", seed, 0x1000);
        std::vector<trace::TraceItem> out;
        for (int i = 0; i < 500; ++i)
            out.push_back(src->next(0));
        return out;
    };
    const auto a = drain(7);
    const auto b = drain(7);
    const auto c = drain(8);
    ASSERT_EQ(a.size(), b.size());
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].gapInstrs, b[i].gapInstrs);
        EXPECT_EQ(a[i].isWrite, b[i].isWrite);
        if (a[i].addr != c[i].addr || a[i].gapInstrs != c[i].gapInstrs)
            differs = true;
    }
    EXPECT_TRUE(differs) << "seed must drive the request stream";
}

TEST(TraceWorkloads, WebDiurnalStreamsResponseBursts)
{
    // Every request touches the hot region then streams cold lines
    // back-to-back; over a long drain both phases must appear, and
    // burst items must be sequential 64-byte strides.
    auto src = trace::makeWorkload("webdiurnal", 1, 0);
    std::size_t hot = 0;
    std::size_t sequential = 0;
    trace::TraceItem prev = src->next(0);
    for (int i = 0; i < 3000; ++i) {
        const trace::TraceItem item = src->next(0);
        if (item.addr < 32 * 1024)
            ++hot;
        if (item.gapInstrs == 0 && item.addr == prev.addr + 64)
            ++sequential;
        prev = item;
    }
    EXPECT_GT(hot, 10u);
    EXPECT_GT(sequential, 100u);
}

TEST(TraceWorkloads, WebDiurnalSelectableFromTopologyJson)
{
    const sim::TopologyConfig topo = sim::parseTopology(
        "{\"workloads\": [\"webdiurnal:4800\", \"mcf\"], "
        "\"mitigation\": \"cs\"}");
    ASSERT_EQ(topo.workloads.size(), 2u);
    EXPECT_EQ(topo.workloads[0], "webdiurnal:4800");

    // And a malformed day length fails topology validation too —
    // compileWorkload runs when the system is built.
    std::vector<sim::SimJob> batch;
    batch.push_back({topo.system,
                     {"webdiurnal:9", "mcf"},
                     10000,
                     1000});
    EXPECT_THROW((void)sim::runConfigsParallel(batch, 1),
                 hard::ConfigError);
}

TEST(TraceWorkloads, FileTraceLoopsForever)
{
    auto src = trace::makeWorkload("dramsim2:@sample", 1, 0x1000);
    const trace::TraceItem first = src->next(0);
    EXPECT_TRUE(first.hasMemOp());
    // Drain well past one file length; the stream must keep going.
    for (int i = 0; i < 2000; ++i)
        (void)src->next(0);
    const trace::TraceItem again = src->next(0);
    EXPECT_TRUE(again.hasMemOp() || again.waitCycles > 0);
}

// ---------------------------------------------------------------
// RowHammer defense model
// ---------------------------------------------------------------

TEST(RowHammerDefense, StallsEveryThresholdActivations)
{
    dram::RowHammerConfig cfg;
    cfg.enabled = true;
    cfg.actThreshold = 4;
    cfg.rfmDramCycles = 100;
    const dram::DramOrganization org; // default: 1 rank, 8 banks
    dram::RowHammerDefense rh(cfg, org);

    dram::DramAddress da{};
    da.rank = 0;
    da.bank = 3;
    for (int i = 0; i < 3; ++i)
        rh.onActivate(da, 1000 + i);
    EXPECT_FALSE(rh.busy(1003));
    EXPECT_EQ(rh.activationCount(0, 3), 3u);

    rh.onActivate(da, 1003); // 4th ACT crosses the threshold
    EXPECT_TRUE(rh.busy(1003));
    EXPECT_TRUE(rh.busy(1102));
    EXPECT_FALSE(rh.busy(1103)); // busyUntil is exclusive
    EXPECT_EQ(rh.busyUntil(), 1103u);
    EXPECT_EQ(rh.activationCount(0, 3), 0u); // RFM resets the bank
    EXPECT_EQ(rh.stats().counter("rfm.issued"), 1u);
    EXPECT_EQ(rh.stats().counter("activations"), 4u);
    EXPECT_EQ(rh.stats().counter("rfm.stall_dram_cycles"), 100u);
}

TEST(RowHammerDefense, BanksCountIndependentlyAndRefreshClears)
{
    dram::RowHammerConfig cfg;
    cfg.enabled = true;
    cfg.actThreshold = 4;
    const dram::DramOrganization org;
    dram::RowHammerDefense rh(cfg, org);

    dram::DramAddress a{};
    a.bank = 0;
    dram::DramAddress b{};
    b.bank = 1;
    rh.onActivate(a, 10);
    rh.onActivate(a, 11);
    rh.onActivate(b, 12);
    EXPECT_EQ(rh.activationCount(0, 0), 2u);
    EXPECT_EQ(rh.activationCount(0, 1), 1u);
    EXPECT_FALSE(rh.busy(13));

    rh.onRefresh(0); // REF resets every bank counter in the rank
    EXPECT_EQ(rh.activationCount(0, 0), 0u);
    EXPECT_EQ(rh.activationCount(0, 1), 0u);
}

// ---------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------

TEST(ScenarioRegistry, CatalogListsAllScenarios)
{
    const auto &all = scenario::scenarios();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_NE(scenario::findScenario("rowhammer-trr"), nullptr);
    EXPECT_NE(scenario::findScenario("pim-covert"), nullptr);
    EXPECT_NE(scenario::findScenario("trace-replay"), nullptr);
    EXPECT_EQ(scenario::findScenario("nope"), nullptr);

    const std::string text = scenario::listScenariosText();
    for (const auto &s : all) {
        EXPECT_NE(text.find(s.name), std::string::npos);
        EXPECT_NE(text.find(s.title), std::string::npos);
    }
}

TEST(ScenarioRegistry, EmbeddedTopologiesMatchShippedFiles)
{
    // The embedded strings must stay byte-identical to the files
    // under examples/topologies/, so --scenario=NAME and
    // --config=FILE can never drift apart.
    const struct
    {
        const char *ref;
        const char *file;
    } pins[] = {
        {"rowhammer-trr", "rowhammer_trr.json"},
        {"rowhammer-trr:shaped", "rowhammer_trr_shaped.json"},
        {"pim-covert", "pim_covert.json"},
        {"pim-covert:shaped", "pim_covert_shaped.json"},
        {"trace-replay", "trace_replay.json"},
        {"trace-replay:shaped", "trace_replay_shaped.json"},
    };
    for (const auto &p : pins) {
        EXPECT_EQ(scenario::scenarioTopologyJson(p.ref),
                  readFile(std::string(CAMO_TOPOLOGY_DIR) + "/" +
                           p.file))
            << p.ref << " drifted from " << p.file;
    }
}

TEST(ScenarioRegistry, EveryTopologyParses)
{
    for (const auto &s : scenario::scenarios()) {
        EXPECT_NO_THROW(sim::parseTopology(s.openTopologyJson))
            << s.name;
        EXPECT_NO_THROW(sim::parseTopology(s.shapedTopologyJson))
            << s.name;
    }
}

TEST(ScenarioRegistry, UnknownRefsRaiseConfigError)
{
    try {
        scenario::scenarioTopologyJson("nope");
        FAIL();
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown scenario token "
                                             "'nope'"),
                  std::string::npos)
            << e.what();
    }
    try {
        scenario::scenarioTopologyJson("pim-covert:midway");
        FAIL();
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown variant token "
                                             "'midway'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ScenarioRegistry, RowHammerTopologyEnablesDefense)
{
    const sim::TopologyConfig topo = sim::parseTopology(
        scenario::scenarioTopologyJson("rowhammer-trr"));
    EXPECT_TRUE(topo.system.mc.rowhammer.enabled);
    EXPECT_EQ(topo.system.mc.rowhammer.actThreshold, 16u);
    EXPECT_EQ(topo.system.mc.rowhammer.rfmDramCycles, 180u);

    // And a malformed rowhammer clause names the offending key.
    try {
        sim::parseTopology("{\"workloads\": [\"mcf\"], \"rowhammer\": "
                           "{\"enabled\": true, \"threshold\": 9}}");
        FAIL();
    } catch (const hard::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("threshold"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ScenarioRegistry, JobSpecAcceptsScenarioField)
{
    obs::json::Value doc = obs::json::Value::makeObject();
    doc["scenario"] = obs::json::Value(std::string("pim-covert"));
    doc["cycles"] = obs::json::Value(static_cast<std::uint64_t>(1000));
    server::JobSpec spec;
    std::string error;
    ASSERT_TRUE(server::JobSpec::fromJson(doc, &spec, &error)) << error;
    EXPECT_EQ(spec.config.dump(),
              obs::json::parse(
                  scenario::scenarioTopologyJson("pim-covert"))
                  .dump());

    doc["scenario"] = obs::json::Value(std::string("nope"));
    EXPECT_FALSE(server::JobSpec::fromJson(doc, &spec, &error));
    EXPECT_NE(error.find("unknown scenario"), std::string::npos);

    // config and scenario together is ambiguous, so it is an error.
    doc["scenario"] = obs::json::Value(std::string("pim-covert"));
    doc["config"] = obs::json::Value::makeObject();
    EXPECT_FALSE(server::JobSpec::fromJson(doc, &spec, &error));
    EXPECT_NE(error.find("pick one"), std::string::npos);
}

// ---------------------------------------------------------------
// Determinism: trace-driven runs are bit-exact across jobs=1/N
// ---------------------------------------------------------------

TEST(ScenarioDeterminism, TraceRunsBitExactAcrossWorkerCounts)
{
    const sim::TopologyConfig topo = sim::parseTopology(
        scenario::scenarioTopologyJson("trace-replay"));
    std::vector<sim::SimJob> batch;
    for (std::uint64_t s = 0; s < 3; ++s) {
        sim::SystemConfig cfg = topo.system;
        cfg.seed = topo.system.seed + s;
        batch.push_back({cfg, topo.workloads, 60000, 5000});
    }
    const auto serial = sim::runConfigsParallel(batch, 1);
    const auto fanned = sim::runConfigsParallel(batch, 3);
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycles, fanned[i].cycles);
        EXPECT_EQ(serial[i].ipc, fanned[i].ipc);
        EXPECT_EQ(serial[i].retired, fanned[i].retired);
        EXPECT_EQ(serial[i].servedReads, fanned[i].servedReads);
        EXPECT_EQ(serial[i].avgReadLatency, fanned[i].avgReadLatency);
        EXPECT_EQ(serial[i].alpha, fanned[i].alpha);
    }
}

// ---------------------------------------------------------------
// Directional channel claims (the catalog's acceptance numbers)
// ---------------------------------------------------------------

TEST(ScenarioChannels, RowHammerOpensUnshapedAndClosesUnderShaping)
{
    const scenario::ScenarioSpec *spec =
        scenario::findScenario("rowhammer-trr");
    ASSERT_NE(spec, nullptr);
    const scenario::ScenarioResult r =
        scenario::evaluateScenario(*spec);

    // Open: the decoder reads the key well below the 0.5 coin-flip
    // line, the RFM mechanism actually fires, and the windowed MI is
    // clearly above the estimator noise floor.
    EXPECT_LT(r.open.ber, 0.25);
    EXPECT_GT(r.open.rfmStalls, 100u);
    EXPECT_GT(r.open.windowMiBits, 0.05);

    // Shaped: the channel is measurably reduced, directionally and
    // by a comfortable margin in capacity.
    EXPECT_GT(r.shaped.ber, r.open.ber);
    EXPECT_LT(r.shaped.channelCapacityBits,
              0.5 * r.open.channelCapacityBits);
    EXPECT_LT(r.shaped.windowMiBits, r.open.windowMiBits);
}

TEST(ScenarioChannels, PimChannelIsFasterAndClosesUnderShaping)
{
    const scenario::ScenarioSpec *pim =
        scenario::findScenario("pim-covert");
    const scenario::ScenarioSpec *rh =
        scenario::findScenario("rowhammer-trr");
    ASSERT_NE(pim, nullptr);
    ASSERT_NE(rh, nullptr);
    const scenario::ScenarioResult rp =
        scenario::evaluateScenario(*pim);
    const scenario::ScenarioResult rr = scenario::evaluateScenario(*rh);

    EXPECT_LT(rp.open.ber, 0.25);
    EXPECT_GT(rp.open.windowMiBits, 0.05);
    // The PIM amplification claim: more capacity per cycle than the
    // RowHammer channel despite 4x shorter pulses.
    EXPECT_GT(rp.open.channelCapacityBits /
                  static_cast<double>(pim->pulseCycles),
              rr.open.channelCapacityBits /
                  static_cast<double>(rh->pulseCycles));

    EXPECT_GT(rp.shaped.ber, rp.open.ber);
    EXPECT_LT(rp.shaped.channelCapacityBits,
              0.5 * rp.open.channelCapacityBits);
}

TEST(ScenarioChannels, TraceReplayLeakIsCutByShaping)
{
    const scenario::ScenarioSpec *spec =
        scenario::findScenario("trace-replay");
    ASSERT_NE(spec, nullptr);
    const scenario::ScenarioResult r =
        scenario::evaluateScenario(*spec);

    EXPECT_GT(r.open.windowMiBits, 0.05);
    EXPECT_LT(r.shaped.windowMiBits, 0.5 * r.open.windowMiBits);
    // Shaping trace-driven cores costs throughput; the catalog
    // records the price, the test just pins that it is accounted.
    EXPECT_GE(r.slowdown, 1.0);
}

} // namespace
