/** @file Tests for the memory controller and its scheduling policies. */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mem/controller.h"
#include "src/mem/schedulers.h"

namespace camo::mem {
namespace {

using dram::Cmd;
using dram::DramDevice;
using dram::DramOrganization;
using dram::DramTiming;

ControllerConfig
baseConfig()
{
    ControllerConfig cfg;
    cfg.org.banksPerRank = 8;
    cfg.org.rowBufferBytes = 8192;
    return cfg;
}

MemRequest
makeReq(ReqId id, CoreId core, Addr addr, bool write = false)
{
    MemRequest req;
    req.id = id;
    req.core = core;
    req.addr = addr;
    req.isWrite = write;
    req.created = 0;
    return req;
}

/** Run the controller until `n` responses arrive (or a cycle cap). */
std::vector<MemRequest>
collectResponses(MemoryController &mc, std::size_t n, Cycle &now,
                 Cycle cap = 200000)
{
    std::vector<MemRequest> got;
    while (got.size() < n && now < cap) {
        ++now;
        mc.tick(now);
        for (auto &r : mc.popResponses(now))
            got.push_back(std::move(r));
    }
    return got;
}

// ----------------------------------------------------------- plumbing

TEST(Controller, ReadProducesResponse)
{
    MemoryController mc(baseConfig());
    Cycle now = 0;
    mc.enqueue(makeReq(1, 0, 0x1000), now);
    const auto got = collectResponses(mc, 1, now);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].id, 1u);
    EXPECT_GT(got[0].mcDone, 0u);
    // Latency must at least cover ACT + CAS + burst in CPU cycles.
    const auto &t = mc.config().timing;
    const Cycle min_dram = t.tRCD + t.tCL + t.dataCycles();
    EXPECT_GE(got[0].mcDone, min_dram * 18 / 5 / 2);
}

TEST(Controller, WritesArePostedNoResponse)
{
    MemoryController mc(baseConfig());
    Cycle now = 0;
    mc.enqueue(makeReq(1, 0, 0x1000, true), now);
    const auto got = collectResponses(mc, 1, now, 20000);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(mc.stats().counter("writes.served"), 1u);
}

TEST(Controller, QueueCapacityRespected)
{
    ControllerConfig cfg = baseConfig();
    cfg.readQueueDepth = 4;
    MemoryController mc(cfg);
    for (ReqId i = 0; i < 4; ++i) {
        ASSERT_TRUE(mc.canAccept(false));
        mc.enqueue(makeReq(i, 0, 0x1000 + 64 * i), 0);
    }
    EXPECT_FALSE(mc.canAccept(false));
    EXPECT_TRUE(mc.canAccept(true)) << "write queue is separate";
}

TEST(Controller, ResponsesComeBackForAllReads)
{
    MemoryController mc(baseConfig());
    Cycle now = 0;
    Rng rng(21);
    std::set<ReqId> outstanding;
    ReqId next_id = 1;
    std::size_t delivered = 0;
    for (int step = 0; step < 60000 && delivered < 200; ++step) {
        ++now;
        if (outstanding.size() < 16 && rng.chance(0.05) &&
            mc.canAccept(false)) {
            const ReqId id = next_id++;
            mc.enqueue(makeReq(id, static_cast<CoreId>(rng.below(4)),
                               rng.next() & 0xFFFFFFC0),
                       now);
            outstanding.insert(id);
        }
        mc.tick(now);
        for (auto &resp : mc.popResponses(now)) {
            ASSERT_TRUE(outstanding.count(resp.id))
                << "unexpected response " << resp.id;
            outstanding.erase(resp.id);
            ++delivered;
        }
    }
    EXPECT_GE(delivered, 200u);
}

TEST(Controller, RowHitFasterThanRowMiss)
{
    // Two reads to the same row: the second should be served at CAS
    // speed; a read to another row in the same bank pays ACT+PRE.
    MemoryController mc(baseConfig());
    Cycle now = 0;
    mc.enqueue(makeReq(1, 0, 0), now);
    auto first = collectResponses(mc, 1, now);
    ASSERT_EQ(first.size(), 1u);

    const Cycle t_hit_start = now;
    mc.enqueue(makeReq(2, 0, 64 * 8), now); // same row (RowColRankBank)
    auto hit = collectResponses(mc, 1, now);
    ASSERT_EQ(hit.size(), 1u);
    const Cycle hit_latency = hit[0].mcDone - t_hit_start;

    const Cycle t_miss_start = now;
    mc.enqueue(makeReq(3, 0, 1ULL << 30), now); // far row, same-ish bank
    auto miss = collectResponses(mc, 1, now);
    ASSERT_EQ(miss.size(), 1u);
    const Cycle miss_latency = miss[0].mcDone - t_miss_start;

    EXPECT_LT(hit_latency, miss_latency);
}

TEST(Controller, WriteDrainHysteresis)
{
    ControllerConfig cfg = baseConfig();
    cfg.writeDrainHigh = 8;
    cfg.writeDrainLow = 2;
    MemoryController mc(cfg);
    Cycle now = 0;
    for (ReqId i = 0; i < 10; ++i)
        mc.enqueue(makeReq(i, 0, 0x100000 + 64 * i, true), now);
    ASSERT_EQ(mc.writeQueueSize(), 10u);
    for (int i = 0; i < 20000 && mc.writeQueueSize() > 0; ++i) {
        ++now;
        mc.tick(now);
    }
    EXPECT_EQ(mc.writeQueueSize(), 0u);
    EXPECT_EQ(mc.stats().counter("writes.served"), 10u);
}

TEST(Controller, RefreshHappens)
{
    MemoryController mc(baseConfig());
    Cycle now = 0;
    // Run long enough to cover several tREFI (5200 DRAM cycles each,
    // x 3.6 CPU cycles).
    for (int i = 0; i < 80000; ++i) {
        ++now;
        mc.tick(now);
    }
    EXPECT_GE(mc.stats().counter("refresh.issued"), 3u);
    // Debt never runs away.
    EXPECT_LE(mc.device().refreshDebt(0, mc.dramCycle()), 1u);
}

TEST(Controller, PriorityBoostReordersService)
{
    // Saturate with core-0 traffic, then enqueue one boosted core-1
    // read behind it: the boosted read should overtake most of the
    // backlog.
    MemoryController mc(baseConfig());
    Cycle now = 0;
    for (ReqId i = 0; i < 20; ++i)
        mc.enqueue(makeReq(i, 0, (1ULL << 20) * i), now);
    mc.boostPriority(1, 4);
    mc.enqueue(makeReq(100, 1, 0x123400), now);

    std::vector<MemRequest> order = collectResponses(mc, 21, now);
    ASSERT_EQ(order.size(), 21u);
    std::size_t pos = 0;
    for (; pos < order.size(); ++pos) {
        if (order[pos].id == 100)
            break;
    }
    EXPECT_LT(pos, 5u) << "boosted request served near the front";
    // Tokens are consumed by service.
    EXPECT_EQ(mc.priorityTokens(1), 3u);
}

TEST(Controller, HighestPriorityModePreempts)
{
    MemoryController mc(baseConfig());
    Cycle now = 0;
    for (ReqId i = 0; i < 20; ++i)
        mc.enqueue(makeReq(i, 0, (1ULL << 20) * i), now);
    mc.setHighestPriorityCore(1);
    mc.enqueue(makeReq(100, 1, 0x5000), now);
    auto order = collectResponses(mc, 21, now);
    std::size_t pos = 0;
    for (; pos < order.size(); ++pos) {
        if (order[pos].id == 100)
            break;
    }
    EXPECT_LT(pos, 3u);
}

TEST(Controller, BankPartitioningConfinesCores)
{
    ControllerConfig cfg = baseConfig();
    cfg.bankPartitioning = true;
    cfg.numCores = 4;
    MemoryController mc(cfg);
    Rng rng(33);
    for (CoreId core = 0; core < 4; ++core) {
        std::set<std::uint32_t> banks;
        for (int i = 0; i < 500; ++i)
            banks.insert(
                mc.decode(rng.next() & ~Addr{63}, core).bank);
        EXPECT_LE(banks.size(), 2u) << "core " << core;
        for (const auto b : banks)
            EXPECT_EQ(b / 2, core) << "core " << core << " bank " << b;
    }
}

TEST(Controller, NoPartitioningUsesAllBanks)
{
    MemoryController mc(baseConfig());
    Rng rng(35);
    std::set<std::uint32_t> banks;
    for (int i = 0; i < 2000; ++i)
        banks.insert(mc.decode(rng.next() & ~Addr{63}, 0).bank);
    EXPECT_EQ(banks.size(), 8u);
}

// ----------------------------------------------------------- FR-FCFS

TEST(FrFcfs, PrefersRowHitOverOlderMiss)
{
    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    // Open row 5 in bank 0.
    std::uint64_t t = 0;
    while (!dev.canIssue(Cmd::ACT, {0, 0, 0, 5, 0}, t))
        ++t;
    dev.issue(Cmd::ACT, {0, 0, 0, 5, 0}, t);
    t += timing.tRCD;

    Transaction miss; // older, to a different row
    miss.req = makeReq(1, 0, 0);
    miss.da = {0, 0, 0, 9, 0};
    Transaction hit; // younger, row hit
    hit.req = makeReq(2, 0, 0);
    hit.da = {0, 0, 0, 5, 3};

    SchedView view;
    view.now = t;
    view.device = &dev;
    view.pool = {&miss, &hit};

    FrFcfsScheduler sched;
    Decision d;
    ASSERT_TRUE(sched.pick(view, d));
    EXPECT_EQ(d.kind, Decision::Kind::Cas);
    EXPECT_EQ(d.txnIndex, 1u) << "row hit wins (first-ready)";
}

TEST(FrFcfs, OldestMissGetsActivate)
{
    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    Transaction a, b;
    a.req = makeReq(1, 0, 0);
    a.da = {0, 0, 0, 1, 0};
    b.req = makeReq(2, 0, 0);
    b.da = {0, 0, 1, 1, 0};

    SchedView view;
    view.now = 10;
    view.device = &dev;
    view.pool = {&a, &b};

    FrFcfsScheduler sched;
    Decision d;
    ASSERT_TRUE(sched.pick(view, d));
    EXPECT_EQ(d.kind, Decision::Kind::Act);
    EXPECT_EQ(d.txnIndex, 0u) << "oldest transaction first";
}

TEST(FrFcfs, YoungerRequestCannotCloseClaimedRow)
{
    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    // Open row 5; an older txn targets row 5 (hit, but CAS blocked by
    // tRCD), a younger one targets row 9 in the same bank.
    std::uint64_t t = 0;
    while (!dev.canIssue(Cmd::ACT, {0, 0, 0, 5, 0}, t))
        ++t;
    dev.issue(Cmd::ACT, {0, 0, 0, 5, 0}, t);

    Transaction hit, conflict;
    hit.req = makeReq(1, 0, 0);
    hit.da = {0, 0, 0, 5, 0};
    conflict.req = makeReq(2, 0, 0);
    conflict.da = {0, 0, 0, 9, 0};

    SchedView view;
    view.now = t + 1; // tRCD not yet satisfied: CAS cannot issue
    view.device = &dev;
    view.pool = {&hit, &conflict};

    FrFcfsScheduler sched;
    Decision d;
    // Nothing should issue: the hit waits for tRCD and the younger
    // conflicting transaction must not precharge the claimed bank.
    EXPECT_FALSE(sched.pick(view, d));
}

// ---------------------------------------------------------------- TP

TEST(TemporalPartition, DomainRotation)
{
    TpConfig cfg;
    cfg.turnLength = 100;
    cfg.deadTime = 20;
    cfg.numDomains = 4;
    TemporalPartitionScheduler tp(cfg);
    EXPECT_EQ(tp.domainAt(0), 0u);
    EXPECT_EQ(tp.domainAt(99), 0u);
    EXPECT_EQ(tp.domainAt(100), 1u);
    EXPECT_EQ(tp.domainAt(399), 3u);
    EXPECT_EQ(tp.domainAt(400), 0u);
}

TEST(TemporalPartition, DeadTimeBlocksIssue)
{
    TpConfig cfg;
    cfg.turnLength = 100;
    cfg.deadTime = 20;
    cfg.numDomains = 2;
    TemporalPartitionScheduler tp(cfg);
    EXPECT_EQ(tp.usableRemaining(0), 80u);
    EXPECT_EQ(tp.usableRemaining(79), 1u);
    EXPECT_EQ(tp.usableRemaining(80), 0u);
    EXPECT_EQ(tp.usableRemaining(99), 0u);

    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    Transaction txn;
    txn.req = makeReq(1, 0, 0);
    txn.da = {0, 0, 0, 1, 0};
    SchedView view;
    view.now = 85; // dead time of domain 0's turn
    view.device = &dev;
    view.pool = {&txn};
    Decision d;
    EXPECT_FALSE(tp.pick(view, d));
}

TEST(TemporalPartition, OnlyOwningDomainServed)
{
    TpConfig cfg;
    cfg.turnLength = 100;
    cfg.deadTime = 20;
    cfg.numDomains = 2;
    TemporalPartitionScheduler tp(cfg);

    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    Transaction c0, c1;
    c0.req = makeReq(1, 0, 0);
    c0.da = {0, 0, 0, 1, 0};
    c1.req = makeReq(2, 1, 0);
    c1.da = {0, 0, 1, 1, 0};

    SchedView view;
    view.device = &dev;
    view.pool = {&c0, &c1};

    view.now = 10; // domain 0's turn
    Decision d;
    ASSERT_TRUE(tp.pick(view, d));
    EXPECT_EQ(d.txnIndex, 0u);

    view.now = 110; // domain 1's turn
    ASSERT_TRUE(tp.pick(view, d));
    EXPECT_EQ(d.txnIndex, 1u);
}

// ---------------------------------------------------------------- FS

TEST(FixedService, ConstantPerCoreSpacing)
{
    FsConfig cfg;
    cfg.servicePeriod = 50;
    cfg.numCores = 2;
    FixedServiceScheduler fs(cfg);
    EXPECT_EQ(fs.nextSlot(0), 0u);
    fs.onCasIssued(0, 10);
    EXPECT_EQ(fs.nextSlot(0), 60u);
    fs.onCasIssued(0, 60);
    EXPECT_EQ(fs.nextSlot(0), 110u);
    // A late CAS still books the next slot one period after service.
    fs.onCasIssued(1, 500);
    EXPECT_EQ(fs.nextSlot(1), 550u);
}

TEST(FixedService, NotDueNotServed)
{
    FsConfig cfg;
    cfg.servicePeriod = 50;
    cfg.numCores = 1;
    FixedServiceScheduler fs(cfg);
    fs.onCasIssued(0, 0);

    DramOrganization org;
    DramTiming timing;
    DramDevice dev(org, timing);
    Transaction txn;
    txn.req = makeReq(1, 0, 0);
    txn.da = {0, 0, 0, 1, 0};
    SchedView view;
    view.device = &dev;
    view.pool = {&txn};
    Decision d;
    view.now = 20;
    EXPECT_FALSE(fs.pick(view, d)) << "core 0's slot is at 50";
    view.now = 50;
    EXPECT_TRUE(fs.pick(view, d));
}

/** Property: under FS the end-to-end CAS spacing per core is never
 *  below the service period. */
TEST(FixedService, EndToEndSpacingProperty)
{
    ControllerConfig cfg = baseConfig();
    cfg.scheduler = SchedulerKind::FixedService;
    cfg.fs.servicePeriod = 40;
    cfg.fs.numCores = 2;
    MemoryController mc(cfg);
    Cycle now = 0;
    Rng rng(41);
    ReqId id = 1;
    std::vector<std::uint64_t> served_at; // DRAM cycles of core-0 CAS
    std::uint64_t last_served = 0;
    std::uint64_t count = 0;
    for (int i = 0; i < 120000; ++i) {
        ++now;
        if (mc.canAccept(false) && rng.chance(0.1))
            mc.enqueue(makeReq(id++, 0, rng.next() & ~Addr{63}), now);
        const auto before = mc.stats().counter("reads.served");
        mc.tick(now);
        if (mc.stats().counter("reads.served") > before) {
            const std::uint64_t t = mc.dramCycle();
            if (count > 0) {
                ASSERT_GE(t - last_served, cfg.fs.servicePeriod);
            }
            last_served = t;
            ++count;
        }
        mc.popResponses(now);
    }
    EXPECT_GT(count, 50u);
}

} // namespace
} // namespace camo::mem
