/** @file Tests for the multi-channel memory system. */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dram/address.h"
#include "src/mem/memory_system.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo::mem {
namespace {

ControllerConfig
twoChannelCfg()
{
    ControllerConfig cfg;
    cfg.org.channels = 2;
    return cfg;
}

MemRequest
req(ReqId id, Addr addr, bool write = false)
{
    MemRequest r;
    r.id = id;
    r.core = 0;
    r.addr = addr;
    r.isWrite = write;
    return r;
}

TEST(MemorySystem, SingleChannelPassThrough)
{
    ControllerConfig cfg;
    MemorySystem ms(cfg);
    EXPECT_EQ(ms.numChannels(), 1u);
    EXPECT_EQ(ms.channelOf(0xDEADBEEF), 0u);

    Cycle now = 0;
    ms.enqueue(req(1, 0x1000), now);
    std::vector<MemRequest> got;
    while (got.size() < 1 && now < 100000) {
        ++now;
        ms.tick(now);
        for (auto &r : ms.popResponses(now))
            got.push_back(std::move(r));
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].addr, 0x1000u) << "original address preserved";
}

TEST(MemorySystem, LinesInterleaveAcrossChannels)
{
    MemorySystem ms(twoChannelCfg());
    ASSERT_EQ(ms.numChannels(), 2u);
    EXPECT_EQ(ms.channelOf(0), 0u);
    EXPECT_EQ(ms.channelOf(64), 1u);
    EXPECT_EQ(ms.channelOf(128), 0u);
    EXPECT_EQ(ms.channelOf(192), 1u);
}

TEST(MemorySystem, ChannelAddressRoundTrip)
{
    dram::DramOrganization org;
    org.channels = 4;
    dram::AddressMapper mapper(org, dram::MappingScheme::RowColRankBank);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & ((1ULL << 44) - 1);
        dram::DramAddress da = mapper.decode(a);
        ASSERT_LT(da.channel, 4u);
        ASSERT_EQ(mapper.channelOf(a), da.channel);
        // encode(decode(a)) restores the full address (mod capacity
        // wrap in the row field).
        const Addr b = mapper.encode(da);
        EXPECT_EQ(mapper.decode(b), da);
    }
}

TEST(MemorySystem, ResponsesMergeFromAllChannels)
{
    MemorySystem ms(twoChannelCfg());
    Cycle now = 0;
    std::set<ReqId> outstanding;
    for (ReqId i = 0; i < 16; ++i) {
        ms.enqueue(req(i, i * 64), now);
        outstanding.insert(i);
    }
    while (!outstanding.empty() && now < 200000) {
        ++now;
        ms.tick(now);
        for (auto &r : ms.popResponses(now)) {
            ASSERT_TRUE(outstanding.count(r.id));
            outstanding.erase(r.id);
        }
    }
    EXPECT_TRUE(outstanding.empty());
}

TEST(MemorySystem, TwoChannelsRoughlyDoubleStreamThroughput)
{
    auto serve = [](std::uint32_t channels) {
        ControllerConfig cfg;
        cfg.org.channels = channels;
        MemorySystem ms(cfg);
        Cycle now = 0;
        ReqId id = 0;
        std::size_t served = 0;
        Rng rng(7);
        for (; now < 60000; ++now) {
            // Saturating random-address read stream.
            const Addr a = rng.next() & ~Addr{63};
            if (ms.canAccept(a, false))
                ms.enqueue(req(id++, a), now);
            ms.tick(now);
            served += ms.popResponses(now).size();
        }
        return served;
    };
    const auto one = serve(1);
    const auto two = serve(2);
    EXPECT_GT(static_cast<double>(two), 1.6 * static_cast<double>(one));
}

TEST(MemorySystem, BoostAndHpmReachAllChannels)
{
    MemorySystem ms(twoChannelCfg());
    ms.boostPriority(2, 5);
    EXPECT_EQ(ms.channel(0).priorityTokens(2), 5u);
    EXPECT_EQ(ms.channel(1).priorityTokens(2), 5u);
    ms.setHighestPriorityCore(1); // must not crash; observable via use
}

TEST(MemorySystem, FullSystemRunsWithTwoChannels)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mc.org.channels = 2;
    const auto one_ch = sim::runConfig(sim::paperConfig(),
                                       sim::adversaryMix("mcf", "mcf"),
                                       60000, 5000);
    const auto two_ch = sim::runConfig(
        cfg, sim::adversaryMix("mcf", "mcf"), 60000, 5000);
    EXPECT_GT(two_ch.throughput(), one_ch.throughput())
        << "mcf x4 is bandwidth-bound: a second channel must help";
}

TEST(MemorySystem, ShapingWorksAcrossChannels)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mc.org.channels = 2;
    cfg.mitigation = sim::Mitigation::BDC;
    const auto m = sim::runConfig(cfg, sim::adversaryMix("mcf", "astar"),
                                  40000);
    EXPECT_GT(m.throughput(), 0.0);
}

} // namespace
} // namespace camo::mem
