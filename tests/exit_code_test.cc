/**
 * @file
 * Table-driven matrix over camosim's documented exit codes: every
 * code in the contract (0 ok, 1 runtime, 2 usage, 3 config,
 * 4 invariant, 5 watchdog, 6 leakage) is provoked by a real
 * invocation of the installed binary. The daemon's worker
 * (src/server/worker.cc) mirrors these constants, so this matrix is
 * what keeps the two surfaces honest with each other.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef CAMO_CAMOSIM_PATH
#define CAMO_CAMOSIM_PATH "camosim"
#endif

namespace {

/** Run camosim with `args`, stdout/stderr discarded; returns the
 *  exit code (negative = died on a signal). */
int
runCamosim(const std::vector<std::string> &args)
{
    std::vector<std::string> argv_s;
    argv_s.push_back(CAMO_CAMOSIM_PATH);
    argv_s.insert(argv_s.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (std::string &a : argv_s)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
        const int null = ::open("/dev/null", O_WRONLY);
        if (null >= 0) {
            ::dup2(null, 1);
            ::dup2(null, 2);
            ::close(null);
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    EXPECT_GT(pid, 0) << "fork failed: " << std::strerror(errno);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return WIFSIGNALED(status) ? -WTERMSIG(status) : -1000;
}

struct ExitCase
{
    int code;
    const char *what;
    std::vector<std::string> args;
};

} // namespace

TEST(ExitCodes, EveryDocumentedCodeHasAProvokingInvocation)
{
    // Exit 3 needs a malformed --config file on disk.
    const std::string bad_config =
        ::testing::TempDir() + "/camosim_bad_config.json";
    {
        std::ofstream os(bad_config);
        os << "{\"workloads\": [\n"; // truncated JSON
    }

    const std::vector<ExitCase> kMatrix = {
        {0, "clean run",
         {"--workloads=mcf,astar", "--cycles=20000",
          "--warmup=1000"}},
        {1, "runtime failure (transient worker faults exhausted)",
         {"--workloads=mcf,astar", "--sweep-seeds=2", "--jobs=1",
          "--inject=worker-kill:param=5", "--cycles=20000",
          "--warmup=1000"}},
        {2, "usage error", {"--no-such-flag"}},
        {3, "config error", {"--config=" + bad_config}},
        {4, "invariant violation (corrupted credits + checkers)",
         {"--workloads=mcf,astar", "--mitigation=bdc", "--checkers",
          "--inject=corrupt-credits:at=1000", "--cycles=40000",
          "--warmup=1000"}},
        {5, "watchdog timeout (wedged request shaper)",
         {"--workloads=mcf,astar", "--mitigation=bdc",
          "--watchdog=15000", "--inject=wedge-req:at=1000",
          "--cycles=60000", "--warmup=1000"}},
        {6, "leakage alert (covert sender, leakage monitor armed)",
         {"--workloads=covert:5A5A5A5A,apache,apache,apache",
          "--leakmon=0.2", "--cycles=300000", "--warmup=1000"}},
    };

    for (const ExitCase &c : kMatrix) {
        EXPECT_EQ(runCamosim(c.args), c.code)
            << "expected exit " << c.code << " for " << c.what;
    }
}

TEST(ExitCodes, UsageAndConfigAreDistinguished)
{
    // A bad flag is usage (2); a well-formed flag pointing at a
    // structurally invalid experiment is config (3). The daemon's
    // admission layer relies on the same split: malformed JobSpecs
    // are rejected at submit, topology errors fail the job.
    EXPECT_EQ(runCamosim({"--watchdog=0"}), 2);
    const std::string unknown_key =
        ::testing::TempDir() + "/camosim_unknown_key.json";
    {
        std::ofstream os(unknown_key);
        os << "{\"workloads\": [\"mcf\"], \"no_such_key\": 1}\n";
    }
    EXPECT_EQ(runCamosim({"--config=" + unknown_key}), 3);
    EXPECT_EQ(runCamosim({"--inject=no-such-kind:at=5",
                          "--workloads=mcf,astar"}),
              3);
}
