/**
 * @file
 * Equivalence tests for the idle-cycle fast-forward (System::run with
 * cfg.fastForward): skipping provably-idle cycles must be *bit-exact*
 * with the per-cycle loop. For every mitigation preset we compare the
 * full observable surface of a run -- the stats-registry JSON tree,
 * the interval-metrics CSV, the cycle-stamped event trace, and the
 * RunMetrics summary -- between fastForward on and off.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kCycles = 60000;
constexpr Cycle kIntervalPeriod = 5000;

struct Variant
{
    const char *name;
    sim::SystemConfig cfg;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;
    auto add = [&](const char *name, auto mutate) {
        sim::SystemConfig cfg = sim::paperConfig();
        mutate(cfg);
        out.push_back({name, cfg});
    };
    add("none", [](sim::SystemConfig &) {});
    add("cs", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::CS;
    });
    add("reqc", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::ReqC;
    });
    add("respc", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::RespC;
    });
    add("bdc", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::BDC;
    });
    add("bdc_random_timing", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::BDC;
        c.randomizeTiming = true;
    });
    add("bdc_no_fakes", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::BDC;
        c.fakeTraffic = false;
    });
    add("bdc_closed_page", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::BDC;
        c.mc.pagePolicy = mem::PagePolicy::Closed;
    });
    add("tp", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::TP;
    });
    add("fs", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::FS;
    });
    add("two_channels", [](sim::SystemConfig &c) {
        c.mitigation = sim::Mitigation::BDC;
        c.mc.org.channels = 2;
    });
    return out;
}

/** Everything a run can show an observer, as one string. */
std::string
observableSurface(sim::SystemConfig cfg, bool fast_forward)
{
    cfg.fastForward = fast_forward;
    cfg.recordLatencies = true;
    sim::System system(cfg, sim::adversaryMix("mcf", "astar"));

    std::ostringstream trace;
    system.tracer().setSink(
        std::make_unique<obs::JsonlTraceSink>(trace));
    system.tracer().setEnabled(true);
    system.enableIntervalStats(kIntervalPeriod);

    system.run(kCycles);

    obs::StatRegistry reg;
    system.registerStats(reg);

    std::ostringstream all;
    all << "now=" << system.now() << "\n";
    for (std::uint32_t i = 0; i < system.numCores(); ++i) {
        all << "core" << i << " ipc=" << system.coreAt(i).ipc()
            << " served=" << system.servedReads(i)
            << " lat=" << system.avgReadLatency(i)
            << " latlog=" << system.latencyLog(i).size() << "\n";
    }
    all << reg.toJson().dump(2) << "\n";
    all << system.intervalStats()->toCsv();
    system.tracer().flush();
    all << trace.str();
    return all.str();
}

} // namespace

TEST(FastForward, BitExactWithPerCycleLoopAcrossMitigations)
{
    for (const Variant &v : variants()) {
        SCOPED_TRACE(v.name);
        const std::string plain = observableSurface(v.cfg, false);
        const std::string fast = observableSurface(v.cfg, true);
        EXPECT_EQ(plain, fast) << "fast-forward diverged for " << v.name;
    }
}

TEST(FastForward, RunMetricsMatchWithWarmup)
{
    for (const Variant &v : variants()) {
        SCOPED_TRACE(v.name);
        sim::SystemConfig plain_cfg = v.cfg;
        plain_cfg.fastForward = false;
        sim::SystemConfig fast_cfg = v.cfg;
        fast_cfg.fastForward = true;
        const auto mix = sim::adversaryMix("bzip", "apache");
        const auto plain =
            sim::runConfig(plain_cfg, mix, kCycles, /*warmup=*/10000);
        const auto fast =
            sim::runConfig(fast_cfg, mix, kCycles, /*warmup=*/10000);
        EXPECT_EQ(plain.cycles, fast.cycles);
        EXPECT_EQ(plain.ipc, fast.ipc);
        EXPECT_EQ(plain.retired, fast.retired);
        EXPECT_EQ(plain.servedReads, fast.servedReads);
        EXPECT_EQ(plain.avgReadLatency, fast.avgReadLatency);
        EXPECT_EQ(plain.alpha, fast.alpha);
    }
}

/** The skip must also be exact when run() is called in many small
 *  slices (epoch-style usage: GA loops, adaptive runtime). */
TEST(FastForward, SlicedRunsMatchMonolithicRun)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;

    auto surface = [&](const std::vector<Cycle> &slices) {
        sim::System system(cfg, sim::adversaryMix("probe", "apache"));
        for (const Cycle s : slices)
            system.run(s);
        obs::StatRegistry reg;
        system.registerStats(reg);
        return reg.toJson().dump(2);
    };

    const std::string mono = surface({40000});
    const std::string sliced = surface({1, 9999, 20000, 3, 9997});
    EXPECT_EQ(mono, sliced);

    cfg.fastForward = false;
    const std::string plain = surface({40000});
    EXPECT_EQ(mono, plain);
}
