/** @file Tests for mutual information and the covert-channel decoder. */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/security/covert_receiver.h"
#include "src/security/mutual_information.h"
#include "src/trace/covert.h"

namespace camo::security {
namespace {

// -------------------------------------------------- JointDistribution

TEST(JointDistribution, IdenticalVariablesGiveEntropy)
{
    JointDistribution joint(4, 4);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(4);
        joint.add(v, v);
    }
    EXPECT_NEAR(joint.mutualInformationBits(), 2.0, 0.05);
    EXPECT_NEAR(joint.entropyXBits(), 2.0, 0.05);
    EXPECT_NEAR(joint.entropyYBits(), 2.0, 0.05);
}

TEST(JointDistribution, IndependentVariablesNearZero)
{
    JointDistribution joint(8, 8);
    Rng rng(5);
    for (int i = 0; i < 50000; ++i)
        joint.add(rng.below(8), rng.below(8));
    EXPECT_LT(joint.mutualInformationBits(), 0.01);
    EXPECT_LT(joint.mutualInformationBitsCorrected(),
              joint.mutualInformationBits() + 1e-12);
}

TEST(JointDistribution, MiBoundedByMarginalEntropies)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        JointDistribution joint(6, 5);
        const int n = 100 + static_cast<int>(rng.below(1000));
        for (int i = 0; i < n; ++i) {
            const auto x = rng.below(6);
            // Partially dependent y.
            const auto y =
                rng.chance(0.5) ? x % 5 : rng.below(5);
            joint.add(x, y);
        }
        const double mi = joint.mutualInformationBits();
        EXPECT_GE(mi, 0.0);
        EXPECT_LE(mi, joint.entropyXBits() + 1e-9);
        EXPECT_LE(mi, joint.entropyYBits() + 1e-9);
    }
}

TEST(JointDistribution, EmptyIsZero)
{
    JointDistribution joint(4, 4);
    EXPECT_DOUBLE_EQ(joint.mutualInformationBits(), 0.0);
    EXPECT_DOUBLE_EQ(joint.mutualInformationBitsCorrected(), 0.0);
    EXPECT_DOUBLE_EQ(joint.entropyXBits(), 0.0);
}

TEST(JointDistribution, WeightedCounts)
{
    JointDistribution joint(2, 2);
    joint.add(0, 0, 50);
    joint.add(1, 1, 50);
    EXPECT_EQ(joint.total(), 100u);
    EXPECT_EQ(joint.count(0, 0), 50u);
    EXPECT_NEAR(joint.mutualInformationBits(), 1.0, 1e-9);
}

TEST(JointDistribution, CorrectionReducesSmallSampleBias)
{
    // Independent variables, few samples: the plug-in estimate is
    // biased up; the corrected one should be much closer to zero.
    Rng rng(11);
    JointDistribution joint(8, 8);
    for (int i = 0; i < 200; ++i)
        joint.add(rng.below(8), rng.below(8));
    const double raw = joint.mutualInformationBits();
    const double corrected = joint.mutualInformationBitsCorrected();
    EXPECT_GT(raw, 0.05) << "bias should be visible at n=200";
    EXPECT_LT(corrected, raw / 2);
}

// ------------------------------------------------------ shaping MI

std::vector<shaper::TrafficEvent>
eventsFromGaps(const std::vector<Cycle> &gaps)
{
    std::vector<shaper::TrafficEvent> ev;
    Cycle t = 0;
    ev.push_back({t, false});
    for (const Cycle g : gaps) {
        t += g;
        ev.push_back({t, false});
    }
    return ev;
}

TEST(ShapingMi, PassThroughLeaksEverything)
{
    Rng rng(13);
    std::vector<Cycle> gaps;
    for (int i = 0; i < 20000; ++i)
        gaps.push_back(1 + rng.below(1000));
    const auto events = eventsFromGaps(gaps);
    const auto quantizer = makeMiQuantizer(16, 8, 1.7);
    const auto r = computeShapingMi(events, events, quantizer);
    const auto h = computeUnshapedLeakage(events, quantizer);
    EXPECT_NEAR(r.miBits, h.intrinsicEntropy, 0.1)
        << "identity shaping leaks H(X)";
    EXPECT_GT(h.intrinsicEntropy, 2.0);
}

TEST(ShapingMi, ConstantOutputLeaksNothing)
{
    Rng rng(17);
    std::vector<Cycle> in_gaps, out_gaps;
    for (int i = 0; i < 20000; ++i) {
        in_gaps.push_back(1 + rng.below(1000));
        out_gaps.push_back(100); // constant-rate output
    }
    const auto r = computeShapingMi(eventsFromGaps(in_gaps),
                                    eventsFromGaps(out_gaps),
                                    makeMiQuantizer(16, 8, 1.7));
    EXPECT_LT(r.miBits, 0.01);
    EXPECT_LT(r.shapedEntropy, 0.01);
}

TEST(ShapingMi, FakeEventsUseIdleSymbol)
{
    std::vector<shaper::TrafficEvent> intrinsic = {{0, false},
                                                   {1000, false}};
    std::vector<shaper::TrafficEvent> shaped = {
        {0, false}, {100, true}, {200, true}, {300, false}};
    const auto r = computeShapingMi(intrinsic, shaped,
                                    makeMiQuantizer(8, 8, 2.0));
    EXPECT_EQ(r.fakeEvents, 2u);
    EXPECT_GT(r.pairs, 0u);
}

TEST(ShapingMi, UnshapedLeakageEqualsEntropy)
{
    Rng rng(19);
    std::vector<Cycle> gaps;
    for (int i = 0; i < 5000; ++i)
        gaps.push_back(1 + rng.below(300));
    const auto events = eventsFromGaps(gaps);
    const auto r =
        computeUnshapedLeakage(events, makeMiQuantizer(16, 8, 1.7));
    EXPECT_DOUBLE_EQ(r.miBits, r.intrinsicEntropy);
    EXPECT_GT(r.miBits, 1.0);
}

// ------------------------------------------------------ windowed MI

TEST(WindowedCrossMi, DependentStreamsDetected)
{
    // Victim activity alternates per window; adversary latency follows.
    std::vector<shaper::TrafficEvent> victim;
    std::vector<LatencySample> adversary;
    Rng rng(23);
    for (Cycle w = 0; w < 400; ++w) {
        const bool busy = (w / 2) % 2 == 0;
        const Cycle base = w * 1000;
        const int victim_events = busy ? 20 : 2;
        for (int i = 0; i < victim_events; ++i)
            victim.push_back({base + rng.below(1000), false});
        for (int i = 0; i < 5; ++i) {
            adversary.push_back(
                {base + rng.below(1000),
                 (busy ? 400u : 100u) + rng.below(30)});
        }
    }
    const auto r = computeWindowedCrossMi(victim, adversary, 1000, 4);
    EXPECT_GT(r.miBits, 0.5);
}

TEST(WindowedCrossMi, IndependentStreamsNearZero)
{
    std::vector<shaper::TrafficEvent> victim;
    std::vector<LatencySample> adversary;
    Rng rng(29);
    for (Cycle w = 0; w < 800; ++w) {
        const Cycle base = w * 1000;
        const auto n = rng.below(20);
        for (std::uint64_t i = 0; i < n; ++i)
            victim.push_back({base + rng.below(1000), false});
        for (int i = 0; i < 5; ++i)
            adversary.push_back(
                {base + rng.below(1000), 100 + rng.below(300)});
    }
    const auto r = computeWindowedCrossMi(victim, adversary, 1000, 4);
    EXPECT_LT(r.miBits, 0.05);
}

TEST(WindowedCrossMi, EmptyInputsAreZero)
{
    const auto r = computeWindowedCrossMi({}, {}, 1000, 4);
    EXPECT_DOUBLE_EQ(r.miBits, 0.0);
    EXPECT_EQ(r.windows, 0u);
}

TEST(WindowedCrossMiCounts, TracksSharedStructure)
{
    std::vector<shaper::TrafficEvent> x, y;
    Rng rng(31);
    for (Cycle w = 0; w < 600; ++w) {
        const bool busy = rng.chance(0.5);
        const Cycle base = w * 1000;
        const int n = busy ? 15 : 1;
        for (int i = 0; i < n; ++i) {
            x.push_back({base + rng.below(1000), false});
            y.push_back({base + rng.below(1000), false});
        }
    }
    const auto dependent = computeWindowedCrossMiCounts(x, y, 1000, 4);
    EXPECT_GT(dependent.miBits, 0.5);
}

// ------------------------------------------------------ covert decode

TEST(CovertDecoder, CleanSignalDecodesExactly)
{
    // Latency 400 in 1-windows, 100 in 0-windows.
    const auto key = trace::keyBits(0xB4u, 8); // 10110100
    std::vector<LatencySample> samples;
    for (std::size_t bit = 0; bit < key.size(); ++bit) {
        const Cycle base = static_cast<Cycle>(bit) * 1000;
        for (int i = 0; i < 10; ++i) {
            samples.push_back(
                {base + 100 * static_cast<Cycle>(i),
                 key[bit] ? 400u : 100u});
        }
    }
    CovertDecoderConfig cfg;
    cfg.windowCycles = 1000;
    const auto decoded = decodeCovert(samples, cfg, key.size());
    ASSERT_EQ(decoded.bits.size(), key.size());
    for (std::size_t i = 0; i < key.size(); ++i)
        EXPECT_EQ(decoded.bits[i], key[i]) << "bit " << i;
    EXPECT_DOUBLE_EQ(bitErrorRate(decoded.bits, key), 0.0);
}

TEST(CovertDecoder, NoisySignalStillDecodes)
{
    const auto key = trace::keyBits(0x2AAAAAAAu);
    Rng rng(37);
    std::vector<LatencySample> samples;
    for (std::size_t bit = 0; bit < key.size(); ++bit) {
        const Cycle base = static_cast<Cycle>(bit) * 2000;
        for (int i = 0; i < 20; ++i) {
            const Cycle noise = rng.below(120);
            samples.push_back({base + 100 * static_cast<Cycle>(i),
                               (key[bit] ? 350u : 150u) + noise});
        }
    }
    CovertDecoderConfig cfg;
    cfg.windowCycles = 2000;
    const auto decoded = decodeCovert(samples, cfg, key.size());
    EXPECT_LT(bitErrorRate(decoded.bits, key), 0.1);
}

TEST(BitErrorRate, FindsBestCyclicAlignment)
{
    const std::vector<bool> key = {true, false, false, true};
    // Decoded stream shifted by 1.
    const std::vector<bool> decoded = {false, false, true, true};
    EXPECT_DOUBLE_EQ(bitErrorRate(decoded, key), 0.0);
}

TEST(BitErrorRate, RandomGuessNearHalf)
{
    Rng rng(41);
    const auto key = trace::keyBits(0xDEADBEEFu);
    std::vector<bool> decoded;
    for (int i = 0; i < 512; ++i)
        decoded.push_back(rng.chance(0.5));
    const double ber = bitErrorRate(decoded, key);
    EXPECT_GT(ber, 0.35);
    EXPECT_LE(ber, 0.5);
}

TEST(BitErrorRate, EmptyInputsAreChance)
{
    EXPECT_DOUBLE_EQ(bitErrorRate({}, {true}), 0.5);
}

} // namespace
} // namespace camo::security
