/** @file Tests for the hardware config port and the distribution
 *  divergence statistics. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/camouflage/config_port.h"
#include "src/common/rng.h"
#include "src/hard/error.h"
#include "src/security/divergence.h"

namespace camo {
namespace {

// ----------------------------------------------------------- config port

TEST(ConfigPort, RoundTripDesired)
{
    const auto cfg = shaper::BinConfig::desired();
    const auto regs = shaper::encodeConfig(cfg);
    const auto back = shaper::decodeConfig(regs);
    EXPECT_EQ(back.edges, cfg.edges);
    EXPECT_EQ(back.credits, cfg.credits);
    EXPECT_EQ(back.replenishPeriod, cfg.replenishPeriod);
}

TEST(ConfigPort, RoundTripRandomConfigs)
{
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint32_t> credits(10);
        for (auto &c : credits)
            c = static_cast<std::uint32_t>(rng.below(1024));
        if (std::count(credits.begin(), credits.end(), 0u) == 10)
            credits[0] = 1;
        const auto cfg = shaper::BinConfig::geometric(
            credits, 5 + rng.below(50), 1.2 + rng.uniform(),
            1000 + rng.below(100000));
        const auto back =
            shaper::decodeConfig(shaper::encodeConfig(cfg));
        ASSERT_EQ(back.edges, cfg.edges);
        ASSERT_EQ(back.credits, cfg.credits);
        ASSERT_EQ(back.replenishPeriod, cfg.replenishPeriod);
    }
}

TEST(ConfigPort, OverflowingFieldsThrow)
{
    auto cfg = shaper::BinConfig::desired();
    cfg.replenishPeriod = 1ULL << 30; // > 24-bit period register
    EXPECT_THROW(shaper::encodeConfig(cfg), hard::ConfigError);

    auto cfg2 = shaper::BinConfig::desired(20, 1.7, 10000);
    cfg2.edges.back() = 1ULL << 21; // > 20-bit edge register
    EXPECT_THROW(shaper::encodeConfig(cfg2), hard::ConfigError);
}

TEST(ConfigPort, StorageMatchesPaperScale)
{
    // 10 bins: 24 + 10*(20+10) programmed + 10*2*10 run-time
    // = 524 bits — the "minimal hardware overhead" the paper claims.
    const auto bits = shaper::hardwareStorageBits(10);
    EXPECT_EQ(bits, 24u + 10 * 30 + 200);
    EXPECT_LT(bits, 1024u) << "well under a kilobit per unit";
}

TEST(ConfigPort, ImageIsCompact)
{
    const auto regs = shaper::encodeConfig(shaper::BinConfig::desired());
    // 24 + 10*30 = 324 bits -> 11 words.
    EXPECT_LE(regs.words.size(), 11u);
}

// ------------------------------------------------------------ divergence

TEST(Divergence, KlOfIdenticalIsZero)
{
    const std::vector<double> p = {0.5, 0.3, 0.2};
    EXPECT_NEAR(security::klDivergenceBits(p, p), 0.0, 1e-6);
}

TEST(Divergence, KlDetectsMismatch)
{
    const std::vector<double> p = {0.9, 0.1};
    const std::vector<double> q = {0.1, 0.9};
    EXPECT_GT(security::klDivergenceBits(p, q), 1.0);
}

TEST(Divergence, KlHandlesZeroTargetMass)
{
    const std::vector<double> p = {0.5, 0.5};
    const std::vector<double> q = {1.0, 0.0};
    const double kl = security::klDivergenceBits(p, q);
    EXPECT_GT(kl, 5.0) << "smoothed but still large";
    EXPECT_TRUE(std::isfinite(kl));
}

TEST(Divergence, ChiSquareAcceptsSampledTruth)
{
    Rng rng(11);
    const std::vector<double> pmf = {0.4, 0.3, 0.2, 0.1};
    std::vector<std::uint64_t> observed(4, 0);
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        if (u < 0.4) ++observed[0];
        else if (u < 0.7) ++observed[1];
        else if (u < 0.9) ++observed[2];
        else ++observed[3];
    }
    const auto r = security::chiSquareGoodnessOfFit(observed, pmf);
    EXPECT_TRUE(r.fitsAtOnePercent) << "stat=" << r.statistic;
}

TEST(Divergence, ChiSquareRejectsWrongDistribution)
{
    const std::vector<double> pmf = {0.25, 0.25, 0.25, 0.25};
    const std::vector<std::uint64_t> observed = {9000, 500, 300, 200};
    const auto r = security::chiSquareGoodnessOfFit(observed, pmf);
    EXPECT_FALSE(r.fitsAtOnePercent);
    EXPECT_GT(r.statistic, 100.0);
}

TEST(Divergence, ChiSquarePoolsSparseCells)
{
    // Expected mass concentrated in cell 0; the tiny tail cells get
    // pooled instead of dividing by ~0.
    const std::vector<double> pmf = {0.97, 0.01, 0.01, 0.01};
    const std::vector<std::uint64_t> observed = {97, 1, 1, 1};
    const auto r = security::chiSquareGoodnessOfFit(observed, pmf);
    EXPECT_TRUE(std::isfinite(r.statistic));
    EXPECT_LE(r.degreesOfFreedom, 1u);
}

TEST(Divergence, ChiSquareEmptyObservation)
{
    const auto r = security::chiSquareGoodnessOfFit({0, 0}, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(r.statistic, 0.0);
}

} // namespace
} // namespace camo
