/** @file End-to-end smoke: the Table II system runs and makes progress. */

#include <gtest/gtest.h>

#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo::sim {
namespace {

TEST(Smoke, BaselineSystemMakesProgress)
{
    SystemConfig cfg = paperConfig();
    const auto mix = adversaryMix("astar", "mcf");
    const RunMetrics m = runConfig(cfg, mix, 50000, 5000);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_GT(m.ipc[i], 0.0) << "core " << i;
        EXPECT_GT(m.retired[i], 0u) << "core " << i;
    }
    EXPECT_GT(m.servedReads[0] + m.servedReads[1] + m.servedReads[2] +
                  m.servedReads[3],
              0u);
}

TEST(Smoke, AllMitigationsRun)
{
    for (const Mitigation mit :
         {Mitigation::None, Mitigation::CS, Mitigation::ReqC,
          Mitigation::RespC, Mitigation::BDC, Mitigation::TP,
          Mitigation::FS}) {
        SystemConfig cfg = paperConfig();
        cfg.mitigation = mit;
        const auto m =
            runConfig(cfg, adversaryMix("mcf", "astar"), 20000);
        EXPECT_GT(m.throughput(), 0.0) << mitigationName(mit);
    }
}

} // namespace
} // namespace camo::sim
