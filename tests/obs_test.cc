/** @file Tests for the observability layer: JSON tree, event tracer
 *  and sinks, stats registry, and interval metrics — including the
 *  system-level trace/export guarantees the camosim flags rely on. */

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/interval.h"
#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/sim/presets.h"
#include "src/sim/system.h"

namespace camo {
namespace {

using obs::Event;
using obs::EventType;

// ----------------------------------------------------------------- json

TEST(Json, DumpCompactObjects)
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["b"] = obs::json::Value(true);
    v["n"] = obs::json::Value(3.5);
    v["i"] = obs::json::Value(std::uint64_t{42});
    v["s"] = obs::json::Value("hi");
    EXPECT_EQ(v.dump(), "{\"b\":true,\"i\":42,\"n\":3.5,\"s\":\"hi\"}");
}

TEST(Json, IntegralNumbersPrintWithoutDecimalPoint)
{
    EXPECT_EQ(obs::json::formatNumber(7.0), "7");
    EXPECT_EQ(obs::json::formatNumber(-3.0), "-3");
    EXPECT_EQ(obs::json::formatNumber(0.5), "0.5");
}

TEST(Json, EscapesControlCharacters)
{
    EXPECT_EQ(obs::json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Json, ParseHandlesNesting)
{
    const auto v = obs::json::parse(
        " { \"a\" : [1, 2.5, true, null, \"x\\n\"], \"b\": {} } ");
    ASSERT_TRUE(v.isObject());
    const auto *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->asArray().size(), 5u);
    EXPECT_DOUBLE_EQ(a->asArray()[1].asNumber(), 2.5);
    EXPECT_TRUE(a->asArray()[2].asBool());
    EXPECT_TRUE(a->asArray()[3].isNull());
    EXPECT_EQ(a->asArray()[4].asString(), "x\n");
    ASSERT_NE(v.find("b"), nullptr);
    EXPECT_TRUE(v.find("b")->isObject());
}

TEST(Json, TryParseRejectsMalformedInput)
{
    EXPECT_FALSE(obs::json::tryParse("").has_value());
    EXPECT_FALSE(obs::json::tryParse("{").has_value());
    EXPECT_FALSE(obs::json::tryParse("[1,]").has_value());
    EXPECT_FALSE(obs::json::tryParse("{\"a\" 1}").has_value());
    EXPECT_FALSE(obs::json::tryParse("tru").has_value());
    EXPECT_FALSE(obs::json::tryParse("{} trailing").has_value());
}

TEST(Json, RoundTripPreservesEquality)
{
    obs::json::Value v = obs::json::Value::makeObject();
    v["list"] = obs::json::Value::makeArray();
    for (int i = 0; i < 5; ++i)
        v["list"].push(obs::json::Value(i * 1.5));
    v["nested"]["deep"]["flag"] = obs::json::Value(false);
    v["name"] = obs::json::Value("quote \" backslash \\");

    for (const int indent : {0, 2, 4}) {
        const auto parsed = obs::json::tryParse(v.dump(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
        EXPECT_EQ(*parsed, v) << "indent=" << indent;
    }
}

// --------------------------------------------------------------- tracer

Event
makeEvent(Cycle at, EventType type, CoreId core = 0)
{
    return Event{.at = at, .type = type, .core = core, .id = at + 1,
                 .addr = at * 64, .arg = 7};
}

TEST(Tracer, DisabledEmitsNothing)
{
    obs::Tracer t(8);
    t.emit(makeEvent(1, EventType::LlcMiss));
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_EQ(t.buffered(), 0u);
}

TEST(Tracer, MacroSkipsNullAndDisabledTracers)
{
    obs::Tracer *null_tracer = nullptr;
    CAMO_TRACE_EVENT(null_tracer, .at = 1,
                     .type = EventType::LlcMiss);
    obs::Tracer t(8);
    CAMO_TRACE_EVENT(&t, .at = 1, .type = EventType::LlcMiss);
    EXPECT_EQ(t.emitted(), 0u);
    t.setEnabled(true);
    CAMO_TRACE_EVENT(&t, .at = 2, .type = EventType::LlcMiss,
                     .core = 3);
    EXPECT_EQ(t.emitted(), 1u);
    EXPECT_EQ(t.snapshot().at(0).core, 3);
}

TEST(Tracer, RingKeepsMostRecentWithoutSink)
{
    obs::Tracer t(4);
    t.setEnabled(true);
    for (Cycle c = 0; c < 10; ++c)
        t.emit(makeEvent(c, EventType::McEnqueue));
    EXPECT_EQ(t.emitted(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].at, 6 + i) << "oldest-first order";
}

TEST(Tracer, SinkReceivesEveryEvent)
{
    std::ostringstream os;
    obs::Tracer t(4); // much smaller than the event count
    t.setSink(std::make_unique<obs::JsonlTraceSink>(os));
    t.setEnabled(true);
    for (Cycle c = 0; c < 33; ++c)
        t.emit(makeEvent(c, EventType::DramRead));
    t.flush();
    EXPECT_EQ(t.dropped(), 0u);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, 33u);
}

TEST(Tracer, BinarySinkRoundTrips)
{
    std::stringstream ss;
    obs::Tracer t(8);
    t.setSink(std::make_unique<obs::BinaryTraceSink>(ss));
    t.setEnabled(true);
    std::vector<Event> sent;
    for (Cycle c = 0; c < 20; ++c) {
        sent.push_back(makeEvent(c * 3, EventType::RespShaperFake,
                                 static_cast<CoreId>(c % 4)));
        t.emit(sent.back());
    }
    t.flush();

    const auto got = obs::readBinaryTrace(ss);
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].at, sent[i].at);
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].core, sent[i].core);
        EXPECT_EQ(got[i].id, sent[i].id);
        EXPECT_EQ(got[i].addr, sent[i].addr);
        EXPECT_EQ(got[i].arg, sent[i].arg);
    }
}

TEST(Tracer, CsvSinkWritesHeaderAndRows)
{
    std::ostringstream os;
    obs::Tracer t(8);
    t.setSink(std::make_unique<obs::CsvTraceSink>(os));
    t.setEnabled(true);
    t.emit(makeEvent(5, EventType::PriorityBoost, 2));
    t.flush();
    const std::string out = os.str();
    EXPECT_EQ(out.find("at,type,core,id,addr,arg\n"), 0u);
    EXPECT_NE(out.find("5,priority_boost,2,"), std::string::npos);
}

TEST(Tracer, EventToJsonOmitsAbsentFields)
{
    Event e;
    e.at = 9;
    e.type = EventType::DramRefresh;
    // core/id/addr left at their "absent" defaults.
    const std::string j = obs::eventToJson(e);
    EXPECT_NE(j.find("\"at\":9"), std::string::npos);
    EXPECT_NE(j.find("\"type\":\"dram_refresh\""), std::string::npos);
    EXPECT_EQ(j.find("\"core\""), std::string::npos);
    EXPECT_EQ(j.find("\"id\""), std::string::npos);
    EXPECT_EQ(j.find("\"addr\""), std::string::npos);
    ASSERT_TRUE(obs::json::tryParse(j).has_value());
}

// ------------------------------------------------------------- registry

TEST(Registry, FlatUsesDottedNames)
{
    StatGroup mc, dram;
    mc.inc("reads.served", 12);
    mc.sample("queue.latency.dram", 4.0);
    mc.sample("queue.latency.dram", 6.0);
    dram.inc("cmd.ACT", 3);

    obs::StatRegistry reg;
    reg.add("mc.ch0", &mc);
    reg.add("mc.ch0.dram", &dram);

    const auto flat = reg.flat();
    EXPECT_DOUBLE_EQ(flat.at("mc.ch0.reads.served"), 12.0);
    EXPECT_DOUBLE_EQ(flat.at("mc.ch0.queue.latency.dram.mean"), 5.0);
    EXPECT_DOUBLE_EQ(flat.at("mc.ch0.dram.cmd.ACT"), 3.0);
    EXPECT_EQ(reg.find("mc.ch0"), &mc);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Registry, JsonTreeNestsByPathSegment)
{
    StatGroup g;
    g.inc("hits", 5);
    obs::StatRegistry reg;
    reg.add("noc.req", &g);

    const obs::json::Value tree = reg.toJson();
    const auto *noc = tree.find("noc");
    ASSERT_NE(noc, nullptr);
    const auto *req = noc->find("req");
    ASSERT_NE(req, nullptr);
    const auto *counters = req->find("counters");
    ASSERT_NE(counters, nullptr);
    const auto *hits = counters->find("hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_DOUBLE_EQ(hits->asNumber(), 5.0);
}

TEST(Registry, SystemStatsJsonRoundTrips)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = 2;
    cfg.mitigation = sim::Mitigation::BDC;
    sim::System system(cfg, {"astar", "astar"});
    system.run(20000);

    obs::StatRegistry reg;
    system.registerStats(reg);
    EXPECT_NE(reg.find("core0"), nullptr);
    EXPECT_NE(reg.find("core1.cache"), nullptr);
    EXPECT_NE(reg.find("shaper.req.core0"), nullptr);
    EXPECT_NE(reg.find("shaper.resp.core1.bins"), nullptr);
    EXPECT_NE(reg.find("mc.ch0.dram"), nullptr);
    EXPECT_NE(reg.find("system"), nullptr);

    const obs::json::Value tree = reg.toJson();
    for (const int indent : {0, 2}) {
        const auto parsed = obs::json::tryParse(tree.dump(indent));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, tree);
    }

    // The flat view agrees with the live groups.
    const auto flat = reg.flat();
    EXPECT_DOUBLE_EQ(
        flat.at("core0.cache.accesses.read"),
        static_cast<double>(
            reg.find("core0.cache")->counter("accesses.read")));
}

// ------------------------------------------------------------- interval

TEST(Interval, CollectsRowsAndExports)
{
    obs::IntervalCollector iv(100, {"a", "b"});
    EXPECT_FALSE(iv.due(99));
    EXPECT_TRUE(iv.due(100));
    iv.addRow(100, {1.0, 2.0});
    EXPECT_FALSE(iv.due(150));
    iv.addRow(200, {3.0, 4.5});

    const std::string csv = iv.toCsv();
    EXPECT_EQ(csv.find("cycle,a,b\n"), 0u);
    EXPECT_NE(csv.find("100,1,2\n"), std::string::npos);
    EXPECT_NE(csv.find("200,3,4.5\n"), std::string::npos);

    const obs::json::Value j = iv.toJson();
    ASSERT_NE(j.find("rows"), nullptr);
    EXPECT_EQ(j.find("rows")->asArray().size(), 2u);
    EXPECT_DOUBLE_EQ(j.find("period")->asNumber(), 100.0);
}

/** BDC with generous bins: plenty of unused credits, so fake traffic
 *  flows whenever the pipeline idles. */
sim::SystemConfig
generousBdcConfig(bool fakes)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = 2;
    cfg.mitigation = sim::Mitigation::BDC;
    cfg.fakeTraffic = fakes;
    const auto bins = shaper::BinConfig::geometric(
        std::vector<std::uint32_t>(shaper::kDefaultBins, 200), 20, 1.7,
        2000);
    cfg.reqBins = bins;
    cfg.respBins = bins;
    return cfg;
}

TEST(Interval, FakeTrafficColumnsTrackFakeGeneration)
{
    for (const bool fakes : {true, false}) {
        sim::System system(generousBdcConfig(fakes),
                           {"astar", "astar"});
        system.enableIntervalStats(5000);
        system.run(30000);

        const obs::IntervalCollector *iv = system.intervalStats();
        ASSERT_NE(iv, nullptr);
        ASSERT_FALSE(iv->rows().empty());

        double fake_total = 0.0;
        const auto &cols = iv->columns();
        for (const auto &row : iv->rows()) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                if (cols[c].find(".bus.fake") != std::string::npos)
                    fake_total += row.values[c];
            }
        }
        if (fakes)
            EXPECT_GT(fake_total, 0.0);
        else
            EXPECT_EQ(fake_total, 0.0);
    }
}

// --------------------------------------------------- system-level trace

std::string
runTracedJsonl(const sim::SystemConfig &cfg, Cycle cycles)
{
    std::ostringstream os;
    sim::System system(cfg, {"astar", "astar"});
    system.tracer().setSink(std::make_unique<obs::JsonlTraceSink>(os));
    system.tracer().setEnabled(true);
    system.run(cycles);
    system.tracer().flush();
    return os.str();
}

/** Golden-file property: the trace of a fixed-seed run is exactly
 *  reproducible, byte for byte. */
TEST(SystemTrace, JsonlTraceIsDeterministic)
{
    const auto cfg = generousBdcConfig(true);
    const std::string a = runTracedJsonl(cfg, 20000);
    const std::string b = runTracedJsonl(cfg, 20000);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(SystemTrace, JsonlSchemaAndLifecycle)
{
    const std::string trace = runTracedJsonl(generousBdcConfig(true),
                                             20000);
    std::istringstream is(trace);
    std::string line;
    std::set<std::string> types;
    Cycle last_at = 0;
    while (std::getline(is, line)) {
        const auto v = obs::json::tryParse(line);
        ASSERT_TRUE(v.has_value()) << "unparseable line: " << line;
        ASSERT_TRUE(v->isObject());
        const auto *at = v->find("at");
        const auto *type = v->find("type");
        ASSERT_NE(at, nullptr);
        ASSERT_NE(type, nullptr);
        ASSERT_TRUE(at->isNumber());
        ASSERT_TRUE(type->isString());
        const auto now = static_cast<Cycle>(at->asNumber());
        EXPECT_GE(now, last_at) << "timestamps must be non-decreasing";
        last_at = now;
        types.insert(type->asString());
    }
    // The full request lifecycle must be visible.
    for (const char *expected :
         {"core_mem_issue", "llc_miss", "req_shaper_enqueue",
          "req_shaper_release", "req_channel_grant", "mc_enqueue",
          "mc_serve", "dram_read", "resp_shaper_enqueue",
          "resp_shaper_release", "resp_channel_grant",
          "resp_delivered", "bin_replenish"}) {
        EXPECT_TRUE(types.count(expected))
            << "missing lifecycle event: " << expected;
    }
}

TEST(SystemTrace, FakeEventsOnlyWhenFakeTrafficEnabled)
{
    for (const bool fakes : {true, false}) {
        const std::string trace =
            runTracedJsonl(generousBdcConfig(fakes), 20000);
        const bool has_fake =
            trace.find("req_shaper_fake") != std::string::npos ||
            trace.find("resp_shaper_fake") != std::string::npos;
        EXPECT_EQ(has_fake, fakes);
    }
}

TEST(SystemTrace, DisabledTracerStaysSilent)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = 2;
    sim::System system(cfg, {"astar", "astar"});
    system.run(5000);
    EXPECT_EQ(system.tracer().emitted(), 0u);
    EXPECT_EQ(system.tracer().buffered(), 0u);
}

} // namespace
} // namespace camo
