/**
 * @file
 * In-process tests for the camosimd experiment service: the wire
 * protocol (framing + hostile inputs), the JobSpec model (strict
 * parsing, cache identity), the forked worker (crash isolation,
 * deadline, cancel, retry seed re-derivation), and the Service state
 * machine (cache, single-flight, shed, cancel, drain, reload,
 * exactly-one-terminal-state accounting).
 *
 * Everything socket-level and end-to-end lives in the chaos soak
 * (bench/server_soak.cc); these tests pin the layers underneath.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "src/server/job.h"
#include "src/server/protocol.h"
#include "src/server/service.h"
#include "src/server/worker.h"
#include "src/sim/parallel.h"

using namespace camo;
using namespace camo::server;

namespace {

constexpr std::uint64_t kCycles = 20000;
constexpr std::uint64_t kWarmup = 1000;

obs::json::Value
smallConfig(const char *mitigation = "bdc")
{
    obs::json::Value cfg = obs::json::Value::makeObject();
    obs::json::Value w = obs::json::Value::makeArray();
    w.push(obs::json::Value("mcf"));
    w.push(obs::json::Value("astar"));
    cfg["workloads"] = std::move(w);
    cfg["mitigation"] = obs::json::Value(mitigation);
    return cfg;
}

JobSpec
smallSpec(std::uint64_t seed = 0)
{
    JobSpec spec;
    spec.config = smallConfig();
    spec.cycles = kCycles;
    spec.warmup = kWarmup;
    spec.seed = seed;
    return spec;
}

/** A spec whose forked attempt burns wall-clock until killed. */
JobSpec
longSpec(std::uint64_t seed)
{
    JobSpec spec = smallSpec(seed);
    spec.cycles = 2000000000ULL;
    return spec;
}

ServiceConfig
testServiceConfig(unsigned workers)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.maxQueue = 64;
    cfg.defaultTimeoutMs = 60000;
    cfg.retry.baseDelayUs = 500;
    cfg.retry.maxDelayUs = 2000;
    return cfg;
}

JobStatus
waitDone(const Service &svc, std::uint64_t id)
{
    JobStatus s;
    EXPECT_TRUE(svc.waitTerminal(id, 120000, &s));
    EXPECT_TRUE(jobStateTerminal(s.state));
    return s;
}

} // namespace

// ------------------------------------------------------ protocol

TEST(Protocol, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    obs::json::Value doc = obs::json::Value::makeObject();
    doc["op"] = "stats";
    doc["n"] = std::uint64_t{42};
    ASSERT_TRUE(writeJson(fds[0], doc));
    const auto back = readJson(fds[1]);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->dump(0), doc.dump(0));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, HeaderEncodingIsLittleEndianAndExact)
{
    std::string frame;
    encodeFrame("abc", &frame);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
    const auto *raw =
        reinterpret_cast<const unsigned char *>(frame.data());
    EXPECT_EQ(decodeFrameLength(raw), 3u);
    EXPECT_EQ(frame.substr(kFrameHeaderBytes), "abc");
}

TEST(Protocol, OversizeAndTruncatedFramesAreClassified)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Oversize header: refused before any allocation.
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::send(fds[0], huge, sizeof huge, 0), 4);
    std::string payload;
    EXPECT_EQ(readFrame(fds[1], &payload), ReadStatus::Oversize);

    // Truncated body then EOF: an error, not a hang.
    const unsigned char hdr[4] = {100, 0, 0, 0};
    ASSERT_EQ(::send(fds[0], hdr, sizeof hdr, 0), 4);
    ASSERT_EQ(::send(fds[0], "abc", 3, 0), 3);
    ::close(fds[0]);
    EXPECT_EQ(readFrame(fds[1], &payload), ReadStatus::Error);
    ::close(fds[1]);
}

// ------------------------------------------------------- JobSpec

TEST(JobSpecModel, FromJsonIsStrict)
{
    obs::json::Value doc = obs::json::Value::makeObject();
    doc["config"] = smallConfig();
    doc["cycles"] = std::uint64_t{5000};
    JobSpec spec;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(doc, &spec, &err)) << err;
    EXPECT_EQ(spec.cycles, 5000u);

    // Unknown keys are rejected: a typo must not silently run the
    // wrong experiment.
    doc["cylces"] = std::uint64_t{1};
    EXPECT_FALSE(JobSpec::fromJson(doc, &spec, &err));
    EXPECT_NE(err.find("cylces"), std::string::npos);

    // Wrong types are rejected.
    obs::json::Value bad = obs::json::Value::makeObject();
    bad["config"] = smallConfig();
    bad["cycles"] = "many";
    EXPECT_FALSE(JobSpec::fromJson(bad, &spec, &err));

    // config is required.
    obs::json::Value empty = obs::json::Value::makeObject();
    EXPECT_FALSE(JobSpec::fromJson(empty, &spec, &err));
}

TEST(JobSpecModel, ToJsonRoundTrips)
{
    JobSpec spec = smallSpec(9);
    spec.watchdog = 12345;
    spec.checkers = true;
    spec.inject = "drop-resp:rate=0.001";
    spec.timeoutMs = 2500;
    JobSpec back;
    std::string err;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), &back, &err)) << err;
    EXPECT_EQ(back.cacheKey(), spec.cacheKey());
    EXPECT_EQ(back.timeoutMs, spec.timeoutMs);
    EXPECT_EQ(back.watchdog, spec.watchdog);
}

TEST(JobSpecModel, CacheKeyCoversExecutionAffectingFieldsOnly)
{
    const JobSpec a = smallSpec(1);
    JobSpec b = smallSpec(1);
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // The deadline changes whether a result arrives, not its bytes.
    b.timeoutMs = 77;
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    // Everything execution-affecting must split the key.
    b = smallSpec(2);
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = smallSpec(1);
    b.cycles = kCycles + 1;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = smallSpec(1);
    b.checkers = true;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = smallSpec(1);
    b.crashAttempts = 1; // changes which attempt succeeds => seed
    EXPECT_NE(a.cacheKey(), b.cacheKey());
}

// ------------------------------------------------------- worker

TEST(Worker, PayloadSuccessMatchesRetrySeedDerivation)
{
    const JobSpec spec = smallSpec(77);
    const obs::json::Value first = runJobPayload(spec, 1, 0, "");
    ASSERT_NE(first.find("result"), nullptr);
    EXPECT_EQ(first.find("code")->asNumber(), 0.0);

    // Attempt 2 must equal a fresh attempt-0 run whose seed is the
    // re-derived one — the contract the chaos soak checks end to end
    // against the camosim binary.
    const obs::json::Value retried = runJobPayload(spec, 1, 2, "");
    JobSpec reseeded = smallSpec(
        sim::deriveSeed(77, sim::kRetrySeedStream, 2));
    const obs::json::Value oneshot =
        runJobPayload(reseeded, 1, 0, "");
    EXPECT_EQ(retried.find("result")->asString(),
              oneshot.find("result")->asString());
    EXPECT_NE(retried.find("result")->asString(),
              first.find("result")->asString());
}

TEST(Worker, PayloadClassifiesTypedErrors)
{
    JobSpec bad = smallSpec();
    bad.config = obs::json::Value::makeObject();
    bad.config["no_such_key"] = std::uint64_t{1};
    const obs::json::Value cfg_err = runJobPayload(bad, 1, 0, "");
    EXPECT_EQ(cfg_err.find("code")->asNumber(), 3.0);
    EXPECT_EQ(cfg_err.find("kind")->asString(), "config");

    JobSpec invariant = smallSpec(3);
    invariant.checkers = true;
    invariant.inject = "corrupt-credits:at=1000";
    invariant.cycles = 40000;
    const obs::json::Value inv = runJobPayload(invariant, 1, 0, "");
    EXPECT_EQ(inv.find("code")->asNumber(), 4.0);

    JobSpec wedged = smallSpec(4);
    wedged.watchdog = 15000;
    wedged.inject = "wedge-req:at=1000";
    wedged.cycles = 60000;
    const obs::json::Value wd = runJobPayload(wedged, 1, 0, "");
    EXPECT_EQ(wd.find("code")->asNumber(), 5.0);
    EXPECT_EQ(wd.find("kind")->asString(), "watchdog");
}

TEST(Worker, ForkedCrashIsIsolatedAndClassified)
{
    JobSpec spec = smallSpec(5);
    spec.crashAttempts = 1; // attempt 0 takes a real SIGSEGV
    std::atomic<bool> cancel{false};
    const WorkerResult crashed =
        runJobForked(spec, 1, 0, 30000, "", &cancel, nullptr);
    EXPECT_EQ(crashed.outcome, WorkerOutcome::Crashed);
    // Plain builds die on the signal; sanitized builds intercept the
    // SEGV and _exit without a payload. Both classify as crashed.
    EXPECT_TRUE(crashed.crashDetail.find("signal") != std::string::npos ||
                crashed.crashDetail.find("without payload") !=
                    std::string::npos)
        << crashed.crashDetail;

    // The same spec on attempt 1 is past its crash budget: succeeds.
    const WorkerResult ok =
        runJobForked(spec, 1, 1, 30000, "", &cancel, nullptr);
    EXPECT_EQ(ok.outcome, WorkerOutcome::Success);
    EXPECT_FALSE(ok.result.empty());
}

TEST(Worker, ForkedDeadlineAndCancelKillTheChild)
{
    std::atomic<bool> cancel{false};
    const WorkerResult dl = runJobForked(longSpec(6), 2, 0, 200, "",
                                         &cancel, nullptr);
    EXPECT_EQ(dl.outcome, WorkerOutcome::Deadline);

    std::atomic<bool> cancelNow{false};
    std::thread flipper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        cancelNow.store(true);
    });
    const WorkerResult cx = runJobForked(longSpec(7), 3, 0, 60000,
                                         "", &cancelNow, nullptr);
    flipper.join();
    EXPECT_EQ(cx.outcome, WorkerOutcome::Canceled);
}

TEST(Worker, TransientInjectionIsReportedAsTransient)
{
    JobSpec spec = smallSpec(8);
    spec.inject = "worker-kill:param=1";
    std::atomic<bool> cancel{false};
    const WorkerResult first =
        runJobForked(spec, 4, 0, 30000, "", &cancel, nullptr);
    EXPECT_EQ(first.outcome, WorkerOutcome::Transient);
    const WorkerResult second =
        runJobForked(spec, 4, 1, 30000, "", &cancel, nullptr);
    EXPECT_EQ(second.outcome, WorkerOutcome::Success);
}

// ------------------------------------------------------- service

TEST(ServiceStateMachine, SubmitRunsToSuccess)
{
    Service svc(testServiceConfig(2));
    const SubmitResult r = svc.submit(smallSpec(11));
    ASSERT_TRUE(r.accepted);
    const JobStatus s = waitDone(svc, r.id);
    EXPECT_EQ(s.state, JobState::Succeeded);
    EXPECT_EQ(s.code, 0);
    EXPECT_EQ(s.attempts, 1u);
    std::string text;
    ASSERT_TRUE(svc.result(r.id, &text));
    EXPECT_NE(text.find("\"mitigation\""), std::string::npos);
}

TEST(ServiceStateMachine, IdenticalResubmitIsServedFromCache)
{
    Service svc(testServiceConfig(2));
    const SubmitResult first = svc.submit(smallSpec(12));
    ASSERT_TRUE(first.accepted);
    waitDone(svc, first.id);
    std::string text1;
    ASSERT_TRUE(svc.result(first.id, &text1));

    const SubmitResult second = svc.submit(smallSpec(12));
    ASSERT_TRUE(second.accepted);
    const JobStatus s = waitDone(svc, second.id);
    EXPECT_EQ(s.state, JobState::Cached);
    EXPECT_TRUE(s.fromCache);
    std::string text2;
    ASSERT_TRUE(svc.result(second.id, &text2));
    EXPECT_EQ(text1, text2); // byte-identical, not just equivalent
}

TEST(ServiceStateMachine, DuplicateInFlightJoinsSingleFlight)
{
    // One worker, occupied by a deadline-bound blocker, so the
    // leader is still queued when its duplicate arrives.
    ServiceConfig cfg = testServiceConfig(1);
    Service svc(cfg);
    JobSpec blocker = longSpec(13);
    blocker.timeoutMs = 700;
    const SubmitResult b = svc.submit(blocker);
    ASSERT_TRUE(b.accepted);

    const SubmitResult leader = svc.submit(smallSpec(14));
    const SubmitResult joiner = svc.submit(smallSpec(14));
    ASSERT_TRUE(leader.accepted);
    ASSERT_TRUE(joiner.accepted);
    EXPECT_NE(leader.id, joiner.id);

    EXPECT_EQ(waitDone(svc, b.id).state, JobState::Deadline);
    EXPECT_EQ(waitDone(svc, leader.id).state, JobState::Succeeded);
    const JobStatus js = waitDone(svc, joiner.id);
    EXPECT_EQ(js.state, JobState::Cached);
    EXPECT_TRUE(js.fromCache);
    std::string lt, jt;
    ASSERT_TRUE(svc.result(leader.id, &lt));
    ASSERT_TRUE(svc.result(joiner.id, &jt));
    EXPECT_EQ(lt, jt);
}

TEST(ServiceStateMachine, FullQueueShedsExplicitly)
{
    ServiceConfig cfg = testServiceConfig(1);
    cfg.maxQueue = 1;
    Service svc(cfg);
    JobSpec blocker = longSpec(15);
    blocker.timeoutMs = 900;
    ASSERT_TRUE(svc.submit(blocker).accepted);
    // Give the worker a moment to pull the blocker off the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(svc.submit(smallSpec(16)).accepted); // fills queue

    const SubmitResult shed = svc.submit(smallSpec(17));
    EXPECT_FALSE(shed.accepted);
    EXPECT_TRUE(shed.shed);
    EXPECT_NE(shed.error.find("shed"), std::string::npos);
    svc.drain();
}

TEST(ServiceStateMachine, QueuedJobsCancelImmediately)
{
    ServiceConfig cfg = testServiceConfig(1);
    Service svc(cfg);
    JobSpec blocker = longSpec(18);
    blocker.timeoutMs = 900;
    ASSERT_TRUE(svc.submit(blocker).accepted);
    const SubmitResult queued = svc.submit(smallSpec(19));
    ASSERT_TRUE(queued.accepted);
    EXPECT_TRUE(svc.cancel(queued.id));
    const JobStatus s = waitDone(svc, queued.id);
    EXPECT_EQ(s.state, JobState::Canceled);
    // A terminal job cannot be canceled again.
    EXPECT_FALSE(svc.cancel(queued.id));
    svc.drain();
}

TEST(ServiceStateMachine, CrashedJobsAreRetriedThenClassified)
{
    Service svc(testServiceConfig(2));
    JobSpec flaky = smallSpec(20);
    flaky.crashAttempts = 1;
    const SubmitResult fr = svc.submit(flaky);
    ASSERT_TRUE(fr.accepted);
    const JobStatus fs = waitDone(svc, fr.id);
    EXPECT_EQ(fs.state, JobState::Succeeded);
    EXPECT_EQ(fs.attempts, 2u);

    // The retried result is the one-shot result at the re-derived
    // seed, not the original seed's.
    std::string retried;
    ASSERT_TRUE(svc.result(fr.id, &retried));
    const obs::json::Value oneshot = runJobPayload(
        smallSpec(sim::deriveSeed(20, sim::kRetrySeedStream, 1)), 1,
        0, "");
    EXPECT_EQ(retried, oneshot.find("result")->asString());

    JobSpec doomed = smallSpec(21);
    doomed.crashAttempts = 99;
    const SubmitResult dr = svc.submit(doomed);
    ASSERT_TRUE(dr.accepted);
    const JobStatus ds = waitDone(svc, dr.id);
    EXPECT_EQ(ds.state, JobState::Crashed);
    EXPECT_EQ(ds.attempts, 3u);
    EXPECT_TRUE(ds.crashDetail.find("signal") != std::string::npos ||
                ds.crashDetail.find("without payload") !=
                    std::string::npos)
        << ds.crashDetail;
}

TEST(ServiceStateMachine, DrainStopsAdmissionAndCompletes)
{
    Service svc(testServiceConfig(2));
    const SubmitResult r = svc.submit(smallSpec(22));
    ASSERT_TRUE(r.accepted);
    svc.beginDrain();
    const SubmitResult rejected = svc.submit(smallSpec(23));
    EXPECT_FALSE(rejected.accepted);
    EXPECT_FALSE(rejected.shed); // drain is a reject, not a shed
    EXPECT_NE(rejected.error.find("drain"), std::string::npos);
    svc.drain();
    EXPECT_TRUE(svc.drained());
    EXPECT_TRUE(jobStateTerminal(waitDone(svc, r.id).state));
}

TEST(ServiceStateMachine, ReloadSwapsLimitsWithoutDroppingJobs)
{
    ServiceConfig cfg = testServiceConfig(2);
    Service svc(cfg);
    const SubmitResult r = svc.submit(smallSpec(24));
    ASSERT_TRUE(r.accepted);

    ServiceConfig next = cfg;
    next.maxQueue = 7;
    next.maxCacheEntries = 1;
    next.workers = 99; // documented as fixed: must be ignored
    svc.reload(next);
    EXPECT_EQ(svc.config().maxQueue, 7u);
    EXPECT_EQ(svc.config().maxCacheEntries, 1u);
    EXPECT_EQ(svc.config().workers, cfg.workers);

    const JobStatus s = waitDone(svc, r.id);
    EXPECT_EQ(s.state, JobState::Succeeded);
    const auto stats = svc.statsJson();
    EXPECT_EQ(stats.find("reloads")->asNumber(), 1.0);
}

TEST(ServiceStateMachine, TerminalRetentionEvictsOldestRecords)
{
    ServiceConfig cfg = testServiceConfig(2);
    cfg.maxTerminalJobs = 2;
    cfg.maxCacheEntries = 0; // every submit runs, no Cached dupes
    Service svc(cfg);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        const SubmitResult r = svc.submit(smallSpec(60 + i));
        ASSERT_TRUE(r.accepted);
        ids.push_back(r.id);
        waitDone(svc, r.id);
    }
    // Only the newest maxTerminalJobs records survive; evicted ids
    // report unknown, the survivors keep their results.
    JobStatus s;
    EXPECT_FALSE(svc.status(ids[0], &s));
    EXPECT_FALSE(svc.status(ids[1], &s));
    ASSERT_TRUE(svc.status(ids[3], &s));
    EXPECT_EQ(s.state, JobState::Succeeded);
    std::string text;
    EXPECT_TRUE(svc.result(ids[3], &text));
    EXPECT_FALSE(text.empty());
    // Cumulative accounting is not rewritten by eviction.
    const auto stats = svc.statsJson();
    double terminalSum = 0;
    for (const auto &[name, n] :
         stats.find("terminal")->asObject())
        terminalSum += n.asNumber();
    EXPECT_EQ(terminalSum, 4.0);
    EXPECT_EQ(stats.find("retained_jobs")->asNumber(), 2.0);
}

TEST(ServiceStateMachine, StatsAccountEveryJobExactlyOnce)
{
    Service svc(testServiceConfig(2));
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
        const SubmitResult r = svc.submit(smallSpec(30 + i % 3));
        ASSERT_TRUE(r.accepted);
        ids.push_back(r.id);
    }
    for (const std::uint64_t id : ids)
        waitDone(svc, id);
    const auto stats = svc.statsJson();
    double terminalSum = 0;
    for (const auto &[name, n] :
         stats.find("terminal")->asObject())
        terminalSum += n.asNumber();
    EXPECT_EQ(terminalSum, stats.find("submitted")->asNumber());
    EXPECT_EQ(stats.find("queue_depth")->asNumber(), 0.0);
    EXPECT_EQ(stats.find("running")->asNumber(), 0.0);
}
