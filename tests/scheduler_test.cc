/**
 * @file
 * Event-scheduler edge cases (ISSUE 7 satellite): calendar-queue
 * unit semantics -- same-cycle FIFO determinism, min-merge vs
 * reschedule vs cancel, far-future wakeups wrapping the calendar --
 * plus system-level properties of pure event execution: wakeups that
 * cross interval-stats/leakage-monitor boundaries, fault-injection
 * events landing inside a clock jump, and watchdog staleness when the
 * kernel jumps over long idle windows.
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/hard/watchdog.h"
#include "src/obs/leakmon.h"
#include "src/obs/registry.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/presets.h"
#include "src/sim/system.h"

namespace camo::sim {
namespace {

// ------------------------------------------- calendar-queue units

TEST(EventScheduler, SameCycleFifoByScheduleOrder)
{
    EventScheduler sched(16);
    sched.scheduleAt(5, 10);
    sched.scheduleAt(2, 10);
    sched.scheduleAt(9, 10);
    // A redundant min-merge must not reorder id 2 behind id 9.
    sched.scheduleAt(2, 10);
    EXPECT_EQ(sched.nextDueCycle(), 10u);

    std::vector<std::uint32_t> due;
    sched.popDue(10, due);
    EXPECT_EQ(due, (std::vector<std::uint32_t>{5, 2, 9}));
    EXPECT_TRUE(sched.empty());
    EXPECT_EQ(sched.nextDueCycle(), kNoCycle);
}

TEST(EventScheduler, MinMergeOnlyMovesEarlier)
{
    EventScheduler sched(4);
    sched.scheduleAt(1, 100);
    sched.scheduleAt(1, 200); // later: no-op
    EXPECT_EQ(sched.wakeOf(1), 100u);
    sched.scheduleAt(1, 50); // earlier: wins
    EXPECT_EQ(sched.wakeOf(1), 50u);
    EXPECT_EQ(sched.nextDueCycle(), 50u);
    // kNoCycle bounds feed through as no-ops.
    sched.scheduleAt(1, kNoCycle);
    EXPECT_EQ(sched.wakeOf(1), 50u);
}

TEST(EventScheduler, RescheduleReplacesAndCancels)
{
    EventScheduler sched(4);
    sched.scheduleAt(0, 30);
    sched.reschedule(0, 90); // authoritative: moves LATER too
    EXPECT_EQ(sched.wakeOf(0), 90u);
    EXPECT_EQ(sched.nextDueCycle(), 90u);

    // The superseded cycle-30 entry is stale: popping its cycle
    // must not surface id 0.
    std::vector<std::uint32_t> due;
    sched.popDue(30, due);
    EXPECT_TRUE(due.empty());
    EXPECT_EQ(sched.scheduled(), 1u);

    sched.reschedule(0, kNoCycle); // cancels
    EXPECT_EQ(sched.wakeOf(0), kNoCycle);
    EXPECT_TRUE(sched.empty());

    sched.scheduleAt(2, 40);
    sched.cancel(2);
    sched.popDue(40, due);
    EXPECT_TRUE(due.empty());
    EXPECT_EQ(sched.nextDueCycle(), kNoCycle);
}

TEST(EventScheduler, FarFutureWakeupsWrapTheCalendar)
{
    EventScheduler sched(8);
    // Same bucket (congruent mod kBuckets), different calendar year:
    // popping the near cycle must leave the far entry pending.
    const Cycle near = 7;
    const Cycle far = 7 + 1000 * EventScheduler::kBuckets;
    sched.scheduleAt(3, far);
    sched.scheduleAt(4, near);
    EXPECT_EQ(sched.nextDueCycle(), near);

    std::vector<std::uint32_t> due;
    sched.popDue(near, due);
    EXPECT_EQ(due, (std::vector<std::uint32_t>{4}));
    EXPECT_EQ(sched.scheduled(), 1u);
    EXPECT_EQ(sched.nextDueCycle(), far);
    sched.popDue(far, due);
    EXPECT_EQ(due, (std::vector<std::uint32_t>{3}));
    EXPECT_TRUE(sched.empty());
}

// --------------------------------------- system-level event model

constexpr Cycle kCycles = 300000;

/** A sparse-receiver machine: probes every 2000 cycles, so kernel
 *  wakeups routinely jump across interval/leakmon check boundaries
 *  and most of the run is one long clock jump. */
SystemConfig
sparseConfig()
{
    SystemConfig cfg = paperConfig();
    cfg.numCores = 2;
    cfg.mitigation = Mitigation::None;
    return cfg;
}

std::vector<std::string>
sparseMix()
{
    return {"probe:2000", "probe:2000"};
}

/** Full observable surface of a run (metrics, stats tree, interval
 *  CSV, leakmon evaluations) for plain-loop vs event-kernel diffs. */
std::string
surface(SystemConfig cfg, bool fast_forward,
        hard::FaultInjector *injector = nullptr,
        const std::vector<std::string> &mix = sparseMix())
{
    cfg.fastForward = fast_forward;
    System system(cfg, mix);
    system.setDiagnosticStream(nullptr);
    obs::LeakMonitorConfig lm;
    lm.windowCycles = 10000;
    lm.checkPeriod = 1000;
    system.enableLeakMonitor(lm); // before intervals: MI column armed
    system.enableIntervalStats(500);
    if (injector)
        system.setFaultInjector(injector);
    system.run(kCycles);

    obs::StatRegistry reg;
    system.registerStats(reg);
    std::ostringstream all;
    all << "now=" << system.now() << "\n";
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        all << "core" << c << " served=" << system.servedReads(c)
            << " lat=" << system.avgReadLatency(c) << "\n";
    }
    all << reg.toJson().dump(2) << "\n";
    all << system.intervalStats()->toCsv();
    return all.str();
}

TEST(EventKernel, FarFutureWakeupsCrossIntervalAndLeakmonBoundaries)
{
    // Probe wakeups (every 2000 cycles) straddle many 500-cycle
    // interval snapshots and 1000-cycle leakmon checks; both cadenced
    // observers must see exactly what the per-cycle loop shows them.
    const std::string plain = surface(sparseConfig(), false);
    const std::string fast = surface(sparseConfig(), true);
    EXPECT_EQ(plain, fast);
}

TEST(EventKernel, FaultInsideClockJumpFiresBitExactly)
{
    // The credit-corruption fault lands at one exact cycle that no
    // component scheduled a wakeup for -- deep inside an idle jump.
    // The kernel must split the jump and apply it on time.
    SystemConfig cfg = sparseConfig();
    cfg.mitigation = Mitigation::BDC; // shapers give credits to corrupt
    const auto plan =
        hard::FaultPlan::parse("corrupt-credits:at=123457:core=0", 7);

    hard::FaultInjector inj_plain(plan);
    const std::string plain = surface(cfg, false, &inj_plain);
    hard::FaultInjector inj_fast(plan);
    const std::string fast = surface(cfg, true, &inj_fast);
    EXPECT_EQ(plain, fast);
    EXPECT_EQ(inj_fast.totalFired(), 1u);
}

TEST(EventKernel, WriteDrainHysteresisFlipsBitExactly)
{
    // The MC's write-drain flag has memory: the per-cycle loop
    // evaluates the flip predicate at every DRAM tick, so a flip
    // lands on the first tick its condition holds even when no
    // command can issue there. An enqueue inside a skipped span must
    // not move the flip. Regression: the 4-core no-shaping adversary
    // run diverged once enough writebacks accumulated (~250k cycles)
    // -- a write landing mid-skip with the drain flag armed at the
    // low watermark kept the event kernel draining writes while the
    // per-cycle loop had already flipped back to reads.
    SystemConfig cfg = paperConfig();
    cfg.mitigation = Mitigation::None;
    const std::vector<std::string> mix = adversaryMix("mcf", "astar");
    const std::string plain = surface(cfg, false, nullptr, mix);
    const std::string fast = surface(cfg, true, nullptr, mix);
    EXPECT_EQ(plain, fast);
}

TEST(EventKernel, WatchdogQuietWhenWindowCoversIdleJumps)
{
    // Pure event execution jumps ~2000 cycles between probe wakeups.
    // With the window above the gap the watchdog's periodic poll must
    // keep observing forward progress (not a stale mid-jump snapshot)
    // and stay quiet to the end of the run.
    SystemConfig cfg = sparseConfig();
    cfg.fastForward = true;
    System system(cfg, sparseMix());
    system.setDiagnosticStream(nullptr);
    hard::WatchdogConfig wc;
    wc.window = 10000; // > the 2000-cycle probe gap
    system.enableWatchdog(wc);
    EXPECT_NO_THROW(system.run(kCycles));
    EXPECT_EQ(system.now(), kCycles);
    EXPECT_GT(system.servedReads(0), 0u);
}

TEST(EventKernel, WatchdogStillFiresOnStallUnderEventExecution)
{
    // A window smaller than the probe gap treats the wait between
    // probes as a genuine stall (the per-cycle loop fires on this
    // config too). Event execution must not sleep through the
    // deadline: the kernel's watchdog poll has to detect the stale
    // progress counter and raise WatchdogTimeout mid-run.
    SystemConfig cfg = sparseConfig();
    cfg.fastForward = true;
    System system(cfg, sparseMix());
    system.setDiagnosticStream(nullptr);
    hard::WatchdogConfig wc;
    wc.window = 500; // << the 2000-cycle probe gap
    system.enableWatchdog(wc);
    EXPECT_THROW(system.run(kCycles), hard::WatchdogTimeout);
    EXPECT_LT(system.now(), kCycles);
}

} // namespace
} // namespace camo::sim
