/**
 * @file
 * Host-time profiler + Chrome-trace exporter tests: node-tree
 * accounting, the export formats, and the two properties the System
 * integration promises — a profiled run is bit-exact with an
 * unprofiled one, and the profiled phases cover (nearly) all of the
 * run's wall time.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "src/obs/chrome_trace.h"
#include "src/obs/json.h"
#include "src/obs/prof.h"
#include "src/obs/registry.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kCycles = 60000;

/** Stats JSON + core summary of a run, with an optional profiler. */
std::string
runSurface(bool profiled, obs::Profiler *prof = nullptr)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    sim::System system(cfg, sim::adversaryMix("mcf", "astar"));
    obs::Profiler local;
    if (profiled)
        system.setProfiler(prof ? prof : &local);
    system.run(kCycles);

    obs::StatRegistry reg;
    system.registerStats(reg);
    std::ostringstream all;
    all << "now=" << system.now() << "\n";
    for (std::uint32_t i = 0; i < system.numCores(); ++i) {
        all << "core" << i << " ipc=" << system.coreAt(i).ipc()
            << " served=" << system.servedReads(i) << "\n";
    }
    all << reg.toJson().dump(2);
    return all.str();
}

} // namespace

TEST(Profiler, TreeAccumulatesAndDerivesSelfTime)
{
    obs::Profiler prof;
    const auto root = prof.root();
    const auto tick = prof.child(root, "tick");
    const auto core0 = prof.child(tick, "core0");
    const auto core1 = prof.child(tick, "core1");
    EXPECT_EQ(prof.child(tick, "core0"), core0)
        << "child() must be stable find-or-create";

    prof.add(root, 1000);
    prof.add(tick, 700);
    prof.add(core0, 300, 5);
    prof.add(core1, 200);

    EXPECT_EQ(prof.totalNs(), 1000u);
    EXPECT_EQ(prof.selfNs(root), 300u);
    EXPECT_EQ(prof.selfNs(tick), 200u);
    EXPECT_EQ(prof.selfNs(core0), 300u);
    EXPECT_EQ(prof.node(core0).calls, 5u);

    // A child timing past its parent (clock jitter) clamps to 0.
    prof.add(core0, 600);
    EXPECT_EQ(prof.selfNs(tick), 0u);

    prof.clear();
    EXPECT_EQ(prof.totalNs(), 0u);
    EXPECT_EQ(prof.child(tick, "core0"), core0)
        << "clear() keeps the tree and ids";
}

TEST(Profiler, ExportsJsonAndFoldedStacks)
{
    obs::Profiler prof;
    const auto tick = prof.child(prof.root(), "tick");
    const auto core0 = prof.child(tick, "core0");
    prof.add(prof.root(), 1000);
    prof.add(tick, 700);
    prof.add(core0, 300);

    const obs::json::Value j = prof.toJson();
    ASSERT_NE(j.find("schema"), nullptr);
    EXPECT_EQ(j.find("schema")->asString(), "camo-prof-1");
    ASSERT_NE(j.find("total_ns"), nullptr);
    EXPECT_EQ(j.find("total_ns")->asNumber(), 1000.0);

    const std::string folded = prof.toFolded();
    EXPECT_NE(folded.find("run 300\n"), std::string::npos);
    EXPECT_NE(folded.find("run;tick 400\n"), std::string::npos);
    EXPECT_NE(folded.find("run;tick;core0 300\n"), std::string::npos);
}

TEST(Profiler, ProfiledRunIsBitExactWithUnprofiledRun)
{
    EXPECT_EQ(runSurface(false), runSurface(true));
}

TEST(Profiler, PhasesCoverWallTimeOfRun)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    sim::System system(cfg, sim::adversaryMix("mcf", "astar"));
    obs::Profiler prof;
    system.setProfiler(&prof);

    const obs::Profiler::Timer wall;
    system.run(kCycles);
    const std::uint64_t wall_ns = wall.elapsedNs();

    // The run scope wraps the whole loop, so >= 95% of the wall time
    // around run() must be attributed to the profiler tree.
    EXPECT_GE(prof.totalNs() * 100, wall_ns * 95)
        << "profiled run covers too little of the wall time";
    EXPECT_LE(prof.totalNs(), wall_ns)
        << "profiled time cannot exceed the enclosing wall time";

    // Self times partition the total: sum over all nodes == root.
    std::uint64_t self_sum = 0;
    for (obs::Profiler::NodeId id = 0;
         id < static_cast<obs::Profiler::NodeId>(prof.nodes().size());
         ++id) {
        self_sum += prof.selfNs(id);
    }
    EXPECT_LE(self_sum, prof.totalNs());
    EXPECT_GE(self_sum * 100, prof.totalNs() * 95)
        << "derived self times lose more than 5% of the total";
}

TEST(ChromeTrace, ProducesValidJsonWithBalancedAsyncSpans)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.mitigation = sim::Mitigation::BDC;
    sim::System system(cfg, sim::adversaryMix("mcf", "astar"));

    std::ostringstream os;
    obs::ChromeTraceWriter writer(os);
    system.tracer().setSink(std::make_unique<obs::ChromeTraceSink>(
        writer, system.numCores()));
    system.tracer().setEnabled(true);

    obs::Profiler prof;
    system.setProfiler(&prof);
    system.run(kCycles);
    system.tracer().flush();
    obs::writeProfile(writer, prof);
    writer.finish();

    const auto parsed = obs::json::tryParse(os.str());
    ASSERT_TRUE(parsed.has_value())
        << "chrome trace must be valid JSON";
    ASSERT_TRUE(parsed->isArray());
    const auto &events = parsed->asArray();
    ASSERT_GT(events.size(), 10u);

    std::size_t begins = 0, ends = 0, durations = 0, meta = 0;
    for (const auto &e : events) {
        const obs::json::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string &kind = ph->asString();
        if (kind == "b")
            ++begins;
        else if (kind == "e")
            ++ends;
        else if (kind == "X")
            ++durations;
        else if (kind == "M")
            ++meta;
    }
    EXPECT_GE(meta, 4u) << "process/thread name records missing";
    EXPECT_GT(begins, 0u);
    EXPECT_GE(begins, ends)
        << "an async end without a begin corrupts the track";
    EXPECT_GT(durations, 0u) << "profile spans missing";
}
