/** @file Tests for the fail-secure hardening layer: fault injection,
 *  runtime invariant checkers, the deadlock watchdog, and structured
 *  recovery. The fault matrix at the bottom pins the layer's core
 *  guarantee: every injected fault is either detected (checker or
 *  watchdog, with a structured diagnostic) or survived via a
 *  documented recovery — never a silent wrong result, never a hang. */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/camouflage/bin_config.h"
#include "src/common/rng.h"
#include "src/hard/checkers.h"
#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/hard/watchdog.h"
#include "src/security/mutual_information.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

namespace camo {
namespace {

using hard::CheckerConfig;
using hard::ConfigError;
using hard::FaultInjector;
using hard::FaultKind;
using hard::FaultPlan;
using hard::InvariantViolation;
using hard::WatchdogTimeout;

// ----------------------------------------------- BinConfig validation

TEST(Validation, RandomizedInvalidConfigsAllThrow)
{
    Rng rng(7);
    const auto base = shaper::BinConfig::desired();
    for (int trial = 0; trial < 200; ++trial) {
        shaper::BinConfig bad = base;
        switch (rng.below(5)) {
        case 0: { // non-monotone edges
            const std::size_t i = 1 + rng.below(bad.edges.size() - 1);
            bad.edges[i] = bad.edges[i - 1] - rng.below(2);
            break;
        }
        case 1: // first edge not zero
            bad.edges[0] = 1 + rng.below(100);
            break;
        case 2: // zero bins
            bad.edges.clear();
            bad.credits.clear();
            break;
        case 3: // credit register overflow
            bad.credits[rng.below(bad.credits.size())] =
                shaper::kMaxCreditsPerBin + 1 +
                static_cast<std::uint32_t>(rng.below(1000));
            break;
        default: // edge/credit count mismatch
            bad.credits.push_back(1);
            break;
        }
        EXPECT_THROW(bad.validate(), ConfigError) << bad.toString();
    }
}

TEST(Validation, DrainExceedingPeriodThrowsOnlyUnderDrainable)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        // All credits in one far bin: draining costs credits * edge
        // cycles, made to overshoot the period.
        shaper::BinConfig cfg;
        cfg.edges = {0, 1000 + rng.below(1000)};
        cfg.credits = {0,
                       20 + static_cast<std::uint32_t>(rng.below(100))};
        cfg.replenishPeriod = 1 + rng.below(cfg.edges[1]);
        ASSERT_GT(cfg.minDrainCycles(), cfg.replenishPeriod);
        cfg.validate(shaper::ValidatePolicy::Basic); // structural: fine
        EXPECT_THROW(cfg.validate(shaper::ValidatePolicy::Drainable),
                     ConfigError);
    }
}

TEST(Validation, ErrorMessageNamesTheOffendingValue)
{
    shaper::BinConfig bad = shaper::BinConfig::desired();
    bad.credits[3] = 4242;
    try {
        bad.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("4242"),
                  std::string::npos)
            << e.what();
    }
}

// ----------------------------------------------- fail-secure schedule

TEST(FailSecure, MostConservativeScheduleSameShape)
{
    const auto from = shaper::BinConfig::desired();
    const auto fs = shaper::BinConfig::failSecure(from);
    // reconfigure() cannot change the hardware bin count.
    EXPECT_EQ(fs.edges, from.edges);
    EXPECT_EQ(fs.replenishPeriod, from.replenishPeriod);
    fs.validate(shaper::ValidatePolicy::Drainable);
    // All budget in the largest-gap bin; nothing anywhere else.
    for (std::size_t i = 0; i + 1 < fs.credits.size(); ++i)
        EXPECT_EQ(fs.credits[i], 0u);
    EXPECT_GE(fs.credits.back(), 1u);
    // Strictly stall-only: never a higher ceiling than the original.
    EXPECT_LE(fs.maxRate(), from.maxRate());
}

TEST(FailSecure, DrainableForAdversarialInputs)
{
    Rng rng(13);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint32_t> credits(10);
        for (auto &c : credits)
            c = static_cast<std::uint32_t>(rng.below(1024));
        if (credits == std::vector<std::uint32_t>(10, 0u))
            credits[0] = 1;
        const auto from = shaper::BinConfig::geometric(
            credits, 5 + rng.below(50), 1.2 + rng.uniform(),
            100 + rng.below(100000));
        const auto fs = shaper::BinConfig::failSecure(from);
        fs.validate();
        // Drainable whenever the bin set allows it at all; when the
        // largest edge exceeds the period even one credit cannot
        // drain, and the budget bottoms out at the minimum of 1.
        if (fs.edges.back() <= fs.replenishPeriod)
            EXPECT_LE(fs.minDrainCycles(), fs.replenishPeriod)
                << from.toString();
        else
            EXPECT_EQ(fs.totalCredits(), 1u) << from.toString();
    }
}

// ----------------------------------------------- fault plan parsing

TEST(FaultPlanParse, RoundTripAndValidation)
{
    const auto plan = FaultPlan::parse(
        "drop-resp:rate=0.001,corrupt-credits:at=80000:core=0,"
        "worker-kill:index=2:param=3",
        42);
    ASSERT_EQ(plan.faults.size(), 3u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::DropResponse);
    EXPECT_DOUBLE_EQ(plan.faults[0].rate, 0.001);
    EXPECT_EQ(plan.faults[1].kind, FaultKind::CorruptCredits);
    EXPECT_EQ(plan.faults[1].at, 80000u);
    EXPECT_EQ(plan.faults[1].core, 0u);
    EXPECT_EQ(plan.faults[2].index, 2u);
    EXPECT_EQ(plan.faults[2].param, 3u);

    EXPECT_THROW(FaultPlan::parse("no-such-kind:at=5", 1), ConfigError);
    EXPECT_THROW(FaultPlan::parse("drop-resp:bogus=1", 1), ConfigError);
    EXPECT_THROW(FaultPlan::parse("drop-resp:rate=x", 1), ConfigError);
    // Stochastic faults need a trigger; worker faults reject cycles.
    EXPECT_THROW(FaultPlan::parse("drop-resp", 1), ConfigError);
    EXPECT_THROW(FaultPlan::parse("worker-kill:at=100", 1),
                 ConfigError);
}

// ----------------------------------------------- protocol checker

dram::DramOrganization
smallOrg()
{
    dram::DramOrganization org;
    org.banksPerRank = 8;
    return org;
}

TEST(ProtocolChecker, AcceptsLegalSequence)
{
    const dram::DramTiming t;
    hard::DramProtocolChecker ck(smallOrg(), t);
    dram::DramAddress a;
    a.bank = 0;
    a.row = 7;
    std::uint64_t now = 100;
    ck.onCommand(dram::Cmd::ACT, a, now);
    ck.onCommand(dram::Cmd::RD, a, now + t.tRCD);
    ck.onCommand(dram::Cmd::PRE, a, now + t.tRAS);
    ck.onCommand(dram::Cmd::ACT, a, now + t.tRC);
    EXPECT_EQ(ck.commandsChecked(), 4u);
}

TEST(ProtocolChecker, CatchesIllegalCommands)
{
    const dram::DramTiming t;
    dram::DramAddress a;
    a.bank = 0;
    a.row = 7;

    { // RD on a closed bank
        hard::DramProtocolChecker ck(smallOrg(), t);
        EXPECT_THROW(ck.onCommand(dram::Cmd::RD, a, 10),
                     InvariantViolation);
    }
    { // RD before tRCD
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        EXPECT_THROW(ck.onCommand(dram::Cmd::RD, a, 100 + t.tRCD - 1),
                     InvariantViolation);
    }
    { // RD to the wrong row
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        dram::DramAddress other = a;
        other.row = 9;
        EXPECT_THROW(
            ck.onCommand(dram::Cmd::RD, other, 100 + t.tRCD),
            InvariantViolation);
    }
    { // ACT on an already-open bank
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        EXPECT_THROW(ck.onCommand(dram::Cmd::ACT, a, 200),
                     InvariantViolation);
    }
    { // PRE before tRAS
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        EXPECT_THROW(ck.onCommand(dram::Cmd::PRE, a, 100 + t.tRAS - 1),
                     InvariantViolation);
    }
    { // ACT-to-ACT on sibling banks inside tRRD
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        dram::DramAddress b = a;
        b.bank = 1;
        EXPECT_THROW(ck.onCommand(dram::Cmd::ACT, b, 100 + t.tRRD - 1),
                     InvariantViolation);
    }
    { // a fifth ACT inside the tFAW window
        hard::DramProtocolChecker ck(smallOrg(), t);
        dram::DramAddress b = a;
        std::uint64_t now = 100;
        for (std::uint32_t i = 0; i < 4; ++i) {
            b.bank = i;
            ck.onCommand(dram::Cmd::ACT, b, now + i * t.tRRD);
        }
        b.bank = 4;
        ASSERT_LT(3 * t.tRRD + t.tRRD, t.tFAW);
        EXPECT_THROW(
            ck.onCommand(dram::Cmd::ACT, b, now + 4 * t.tRRD),
            InvariantViolation);
    }
    { // REF with a bank still open
        hard::DramProtocolChecker ck(smallOrg(), t);
        ck.onCommand(dram::Cmd::ACT, a, 100);
        EXPECT_THROW(ck.onCommand(dram::Cmd::REF, a, 200),
                     InvariantViolation);
    }
}

// ----------------------------------------------- lifecycle tracker

TEST(Lifecycle, IssuedExactlyOnceRetired)
{
    hard::RequestLifecycleTracker lt;
    lt.onIssue(1, 0, 100);
    lt.onIssue(2, 0, 110);
    EXPECT_EQ(lt.inFlight(), 2u);
    lt.onRetire(1, 0, 300);
    EXPECT_EQ(lt.inFlight(), 1u);
    EXPECT_EQ(lt.issued(), 2u);
    EXPECT_EQ(lt.retired(), 1u);

    // Same id issued twice while in flight.
    EXPECT_THROW(lt.onIssue(2, 0, 120), InvariantViolation);
    // Retiring a request that was never issued.
    EXPECT_THROW(lt.onRetire(99, 0, 130), InvariantViolation);
    // A duplicate response: second retire of the same id.
    EXPECT_THROW(lt.onRetire(1, 0, 310), InvariantViolation);
}

TEST(Lifecycle, LeakedReportsOnlyOldRequests)
{
    hard::RequestLifecycleTracker lt;
    lt.onIssue(1, 0, 100);
    lt.onIssue(2, 1, 90000);
    const auto leaks = lt.leaked(100000, 50000);
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].id, 1u);
    EXPECT_EQ(leaks[0].core, 0u);
    EXPECT_EQ(leaks[0].issuedAt, 100u);
}

// ----------------------------------------------- conservation checker

hard::ShaperContract
contract100()
{
    hard::ShaperContract c;
    c.edges = {0, 100};
    c.credits = {0, 5};
    c.replenishPeriod = 10000;
    return c;
}

TEST(Conservation, ReleasedTrafficInCreditedBinPasses)
{
    hard::ShaperConservationChecker ck;
    ck.setContract(0, contract100());
    Cycle now = 1000;
    for (int i = 0; i < 5; ++i, now += 150) {
        ck.onShaperRelease(0, now);
        EXPECT_EQ(ck.onBusPush(0, now, false, true), "");
    }
    EXPECT_EQ(ck.releasesSeen(0), 5u);
}

TEST(Conservation, BypassAndFakeWhileDisabledAreViolations)
{
    hard::ShaperConservationChecker ck;
    ck.setContract(0, contract100());
    // Push without a matching release: shaper bypass.
    EXPECT_NE(ck.onBusPush(0, 1000, false, true), "");
    // The checker resyncs after reporting, so legal traffic after the
    // violation is clean again (one leak reports once).
    ck.onShaperRelease(0, 1200);
    EXPECT_EQ(ck.onBusPush(0, 1200, false, true), "");
    // A fake while fake generation is disabled.
    ck.onShaperRelease(0, 1400);
    EXPECT_NE(ck.onBusPush(0, 1400, true, false), "");
}

TEST(Conservation, GapOutsideEveryCreditedBinIsAViolation)
{
    hard::ShaperConservationChecker ck;
    ck.setContract(0, contract100()); // credits only at gap >= 100
    ck.onShaperRelease(0, 1000);
    EXPECT_EQ(ck.onBusPush(0, 1000, false, true), ""); // first push
    ck.onShaperRelease(0, 1050);
    // Gap of 50: no credited bin admits it.
    EXPECT_NE(ck.onBusPush(0, 1050, false, true), "");
}

TEST(Conservation, LiveCreditsAboveProgrammedAreAViolation)
{
    hard::ShaperConservationChecker ck;
    ck.setContract(0, contract100());
    EXPECT_EQ(ck.onCreditState(0, {0, 5}), "");
    EXPECT_EQ(ck.onCreditState(0, {0, 3}), "");
    EXPECT_NE(ck.onCreditState(0, {0, 6}), "");
    EXPECT_NE(ck.onCreditState(0, {1, 5}), "");
}

TEST(Conservation, PerPeriodBudgetIsEnforced)
{
    hard::ShaperConservationChecker ck;
    hard::ShaperContract c;
    c.edges = {0, 100};
    c.credits = {5, 0}; // 1-cycle gaps are credited; budget is 5
    c.replenishPeriod = 100000;
    ck.setContract(0, c);
    // The budget window tolerates 2 * total + 8 pushes (period
    // boundary phase is unknown to the checker); one more must trip.
    Cycle now = 1000;
    std::string msg;
    for (std::uint64_t i = 0; i <= 2 * c.totalCredits() + 8; ++i) {
        ck.onShaperRelease(0, now);
        msg = ck.onBusPush(0, now, false, true);
        if (!msg.empty())
            break;
        now += 1;
    }
    EXPECT_NE(msg, "");
}

// ----------------------------------------------- watchdog

TEST(Watchdog, QuietWhileProgressFlows)
{
    hard::WatchdogConfig cfg;
    cfg.window = 1000;
    cfg.pollPeriod = 100;
    hard::Watchdog wd(cfg);
    std::uint64_t work = 0;
    for (Cycle now = 0; now < 10000; now += 100) {
        const auto fired =
            wd.poll(now, {{++work, true}}, now + 10);
        EXPECT_FALSE(fired.has_value());
    }
}

TEST(Watchdog, FiresOnStalledPendingCore)
{
    hard::WatchdogConfig cfg;
    cfg.window = 1000;
    cfg.pollPeriod = 100;
    hard::Watchdog wd(cfg);
    bool fired = false;
    for (Cycle now = 0; now <= 5000 && !fired; now += 100)
        fired = wd.poll(now, {{42, true}}, now + 10).has_value();
    EXPECT_TRUE(fired);
}

TEST(Watchdog, IdleCoreWithNoPendingWorkNeverFires)
{
    hard::WatchdogConfig cfg;
    cfg.window = 1000;
    cfg.pollPeriod = 100;
    hard::Watchdog wd(cfg);
    for (Cycle now = 0; now <= 20000; now += 100)
        EXPECT_FALSE(
            wd.poll(now, {{42, false}}, now + 10).has_value());
}

TEST(Watchdog, NoEventWithPendingWorkIsAnImmediateDeadlock)
{
    hard::WatchdogConfig cfg;
    cfg.window = 1000000; // staleness alone would take a million cycles
    hard::Watchdog wd(cfg);
    const auto fired = wd.poll(10, {{0, true}}, kNoCycle);
    ASSERT_TRUE(fired.has_value());
    EXPECT_NE(fired->find("deadlock"), std::string::npos);
}

// ----------------------------------------------- parallel retry

TEST(ParallelRetry, TransientFaultsAreRetriedOthersPropagate)
{
    // Job 3 fails transiently twice; with 3 attempts it completes.
    std::atomic<int> calls{0};
    auto out = sim::parallelMapRetry(
        8, 2, 3, [&](std::size_t i, unsigned attempt) -> int {
            ++calls;
            if (i == 3 && attempt < 2)
                throw hard::TransientFault("flaky");
            return static_cast<int>(i * 10 + attempt);
        });
    EXPECT_EQ(out[3], 32); // succeeded on attempt 2
    EXPECT_EQ(out[4], 40);
    EXPECT_EQ(calls.load(), 8 + 2);

    // Attempts exhausted: the TransientFault becomes permanent.
    EXPECT_THROW(sim::parallelMapRetry(
                     4, 2, 2,
                     [&](std::size_t i, unsigned) -> int {
                         if (i == 1)
                             throw hard::TransientFault("always");
                         return 0;
                     }),
                 hard::TransientFault);

    // Non-transient errors are never retried.
    std::atomic<int> hard_calls{0};
    EXPECT_THROW(sim::parallelMapRetry(
                     1, 1, 5,
                     [&](std::size_t, unsigned) -> int {
                         ++hard_calls;
                         throw InvariantViolation("real bug");
                     }),
                 InvariantViolation);
    EXPECT_EQ(hard_calls.load(), 1);
}

// ----------------------------------------------- system integration

sim::SystemConfig
twoCoreBdc()
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = 2;
    cfg.mitigation = sim::Mitigation::BDC;
    return cfg;
}

/** A system with checkers/watchdog armed and diagnostics silenced
 *  (the tests assert on the exceptions, not the stderr dump). */
std::unique_ptr<sim::System>
makeHardened(const sim::SystemConfig &cfg, FaultInjector *injector,
             bool checkers, Cycle watchdog_window)
{
    auto sys = std::make_unique<sim::System>(
        cfg, std::vector<std::string>{"mcf", "astar"});
    sys->setDiagnosticStream(nullptr);
    if (checkers)
        sys->enableCheckers(CheckerConfig{});
    if (watchdog_window > 0) {
        hard::WatchdogConfig wc;
        wc.window = watchdog_window;
        sys->enableWatchdog(wc);
    }
    if (injector)
        sys->setFaultInjector(injector);
    return sys;
}

TEST(SystemHardening, CheckersAreBitExactOnCleanRuns)
{
    const Cycle cycles = 200000;
    sim::SystemConfig cfg = twoCoreBdc();

    sim::System plain(cfg, {"mcf", "astar"});
    plain.run(cycles);

    auto hardened = makeHardened(cfg, nullptr, true, 1000000);
    hardened->run(cycles);
    EXPECT_NO_THROW(hardened->checkForLeaks());

    ASSERT_EQ(plain.now(), hardened->now());
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        EXPECT_EQ(plain.servedReads(c), hardened->servedReads(c));
        EXPECT_EQ(plain.coreAt(c).retired(), hardened->coreAt(c).retired());
        EXPECT_EQ(plain.busMonitor(c).count(),
                  hardened->busMonitor(c).count());
        EXPECT_EQ(plain.intrinsicMonitor(c).count(),
                  hardened->intrinsicMonitor(c).count());
    }
    // The checkers actually looked at the run.
    EXPECT_GT(hardened->checkers()->lifecycle().issued(), 0u);
}

TEST(SystemHardening, DiagnosticJsonIsStructured)
{
    auto sys = makeHardened(twoCoreBdc(), nullptr, true, 0);
    sys->run(50000);
    const std::string dump = sys->diagnosticJson("unit-test").dump(2);
    EXPECT_NE(dump.find("\"reason\""), std::string::npos);
    EXPECT_NE(dump.find("unit-test"), std::string::npos);
    EXPECT_NE(dump.find("\"queues\""), std::string::npos);
    EXPECT_NE(dump.find("\"stats\""), std::string::npos);
    EXPECT_NE(dump.find("\"cycle\""), std::string::npos);
}

// --------------------------- the fault matrix (>= 10 fault kinds) ---

TEST(FaultMatrix, DroppedResponseIsReportedAsALeak)
{
    FaultInjector inj(FaultPlan::parse("drop-resp:rate=0.01", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 0);
    sys->run(350000);
    ASSERT_GT(inj.count(FaultKind::DropResponse), 0u);
    EXPECT_THROW(sys->checkForLeaks(), InvariantViolation);
}

TEST(FaultMatrix, DelayedResponsesAreSurvived)
{
    FaultInjector inj(
        FaultPlan::parse("delay-resp:rate=0.01:param=40", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 500000);
    sys->run(350000);
    ASSERT_GT(inj.count(FaultKind::DelayResponse), 0u);
    // Held responses are eventually delivered: no leak, no deadlock.
    EXPECT_NO_THROW(sys->checkForLeaks());
    EXPECT_GT(sys->servedReads(0), 0u);
}

TEST(FaultMatrix, DuplicateResponseIsCaughtAtDelivery)
{
    FaultInjector inj(FaultPlan::parse("dup-resp:rate=0.01", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 0);
    EXPECT_THROW(sys->run(350000), InvariantViolation);
    EXPECT_GT(inj.count(FaultKind::DuplicateResponse), 0u);
}

TEST(FaultMatrix, CorruptedCreditsTripTheConservationChecker)
{
    FaultInjector inj(
        FaultPlan::parse("corrupt-credits:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 0);
    EXPECT_THROW(sys->run(200000), InvariantViolation);
}

TEST(FaultMatrix, CorruptedCreditsDegradeUnderRecoverPolicy)
{
    FaultInjector inj(
        FaultPlan::parse("corrupt-credits:at=60000:core=0", 9));
    sim::System sys(twoCoreBdc(), {"mcf", "astar"});
    sys.setDiagnosticStream(nullptr);
    CheckerConfig cc;
    cc.recoverShaper = true;
    sys.enableCheckers(cc);
    sys.setFaultInjector(&inj);
    sys.run(300000); // survives
    EXPECT_TRUE(sys.shaperDegraded(0));
    EXPECT_FALSE(sys.shaperDegraded(1));
    EXPECT_EQ(sys.stats().counter("hard.shaper_degraded"), 1u);
    // Degraded is stall-only: the core still makes forward progress.
    EXPECT_GT(sys.servedReads(0), 0u);
    EXPECT_NO_THROW(sys.checkForLeaks());
}

TEST(FaultMatrix, StarvedCreditsAreAnImmediateDeadlock)
{
    // Starvation kills the shaper's next-event bound; without the
    // watchdog the fast-forward loop would skip silently to the end
    // of the run — the watchdog turns that into a diagnosed failure.
    FaultInjector inj(
        FaultPlan::parse("starve-credits:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, false, 100000);
    EXPECT_THROW(sys->run(500000), WatchdogTimeout);
}

TEST(FaultMatrix, MalformedConfigImageIsRejectedAndSurvived)
{
    FaultInjector inj(
        FaultPlan::parse("malformed-config:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 500000);
    sys->run(250000);
    EXPECT_EQ(inj.count(FaultKind::MalformedConfig), 1u);
    // decodeConfig validated the corrupted image and threw instead of
    // programming garbage; the run continued on the old schedule.
    EXPECT_GE(sys->stats().counter("hard.config_rejected"), 1u);
    EXPECT_EQ(sys->stats().counter("hard.config_accepted_malformed"),
              0u);
    EXPECT_NO_THROW(sys->checkForLeaks());
}

TEST(FaultMatrix, WedgedRequestShaperTripsTheWatchdog)
{
    FaultInjector inj(FaultPlan::parse("wedge-req:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, false, 100000);
    EXPECT_THROW(sys->run(500000), WatchdogTimeout);
}

TEST(FaultMatrix, WedgedResponseShaperTripsTheWatchdog)
{
    FaultInjector inj(
        FaultPlan::parse("wedge-resp:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, false, 100000);
    EXPECT_THROW(sys->run(500000), WatchdogTimeout);
}

TEST(FaultMatrix, ShaperBypassTripsTheConservationChecker)
{
    FaultInjector inj(FaultPlan::parse("leak-req:at=60000:core=0", 9));
    auto sys = makeHardened(twoCoreBdc(), &inj, true, 0);
    EXPECT_THROW(sys->run(300000), InvariantViolation);
    EXPECT_EQ(inj.count(FaultKind::LeakRequest), 1u);
}

TEST(FaultMatrix, OffScheduleFakeTripsTheConservationChecker)
{
    sim::SystemConfig cfg = twoCoreBdc();
    cfg.fakeTraffic = false; // any fake on the bus is now illegal
    FaultInjector inj(
        FaultPlan::parse("force-fake:at=60000:core=0", 9));
    auto sys = std::make_unique<sim::System>(
        cfg, std::vector<std::string>{"mcf", "astar"});
    sys->setDiagnosticStream(nullptr);
    sys->enableCheckers(CheckerConfig{});
    sys->setFaultInjector(&inj);
    EXPECT_THROW(sys->run(300000), InvariantViolation);
    EXPECT_EQ(inj.count(FaultKind::ForceFake), 1u);
}

TEST(FaultMatrix, TransientWorkerDeathIsRetried)
{
    sim::SystemConfig cfg = twoCoreBdc();
    cfg.numCores = 2;
    std::vector<sim::SimJob> batch;
    for (int k = 0; k < 4; ++k) {
        sim::SystemConfig c = cfg;
        c.seed = 100 + k;
        batch.push_back({c, {"mcf", "astar"}, 60000, 5000});
    }
    FaultInjector inj(
        FaultPlan::parse("worker-kill:index=1:param=1", 9));
    const auto runs = sim::runConfigsParallel(batch, 2, &inj);
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(inj.count(FaultKind::WorkerKill), 1u);
    for (const auto &r : runs)
        EXPECT_GT(r.throughput(), 0.0);

    // Attempts exhausted: the failure surfaces instead of hanging.
    FaultInjector fatal(
        FaultPlan::parse("worker-kill:index=1:param=10", 9));
    EXPECT_THROW(sim::runConfigsParallel(batch, 2, &fatal),
                 hard::TransientFault);
}

TEST(FaultMatrix, StalledWorkerFinishesWithIdenticalResults)
{
    sim::SystemConfig cfg = twoCoreBdc();
    std::vector<sim::SimJob> batch;
    for (int k = 0; k < 3; ++k) {
        sim::SystemConfig c = cfg;
        c.seed = 200 + k;
        batch.push_back({c, {"mcf", "astar"}, 60000, 5000});
    }
    const auto baseline = sim::runConfigsParallel(batch, 2);
    FaultInjector inj(
        FaultPlan::parse("worker-stall:index=0:param=5", 9));
    const auto stalled = sim::runConfigsParallel(batch, 2, &inj);
    EXPECT_EQ(inj.count(FaultKind::WorkerStall), 1u);
    // A stall is pure latency: attempt 0 completes, so the results
    // are byte-identical to the unfaulted batch.
    ASSERT_EQ(stalled.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_DOUBLE_EQ(stalled[i].throughput(),
                         baseline[i].throughput());
}

// ------------------------------- degradation leaks no more ----------

TEST(FailSecure, DegradedScheduleLeaksNoMoreThanDesired)
{
    const auto mix = sim::adversaryMix("mcf", "bzip");
    const auto quantizer = security::makeMiQuantizer(16, 8, 1.7);

    sim::SystemConfig base = sim::paperConfig();
    base.recordTraffic = true;
    sim::System unshaped(base, mix);
    unshaped.run(300000);

    auto shapedMi = [&](const shaper::BinConfig &bins) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.recordTraffic = true;
        cfg.shapeCore = {false, true, true, true};
        cfg.reqBins = bins;
        sim::System shaped(cfg, mix);
        shaped.run(600000);
        return security::computeShapingMi(
            unshaped.intrinsicMonitor(1).events(),
            shaped.requestShaper(1)->postMonitor().events(),
            quantizer);
    };

    const auto desired = shapedMi(shaper::BinConfig::desired());
    const auto degraded = shapedMi(
        shaper::BinConfig::failSecure(shaper::BinConfig::desired()));
    // The fail-secure guarantee: degradation never widens the timing
    // channel relative to the schedule it replaces.
    EXPECT_LE(degraded.miBits, desired.miBits + 0.02)
        << "desired=" << desired.miBits
        << " degraded=" << degraded.miBits;
}

// ------------------------------- parse diagnostics ------------------

TEST(FaultPlanParse, ErrorsCarryTokenAndByteOffset)
{
    // A bad --inject in a long spec must say which token broke and
    // where, so the user fixes the spec instead of bisecting it.
    auto messageOf = [](const std::string &spec) -> std::string {
        try {
            FaultPlan::parse(spec, 1);
        } catch (const ConfigError &e) {
            return e.what();
        }
        return "";
    };

    const std::string unknownKind =
        messageOf("drop-resp:rate=0.001,no-such:at=5");
    EXPECT_NE(unknownKind.find("'no-such'"), std::string::npos)
        << unknownKind;
    EXPECT_NE(unknownKind.find("at byte 21"), std::string::npos)
        << unknownKind;

    const std::string badValue = messageOf("drop-resp:rate=x");
    EXPECT_NE(badValue.find("'rate=x'"), std::string::npos)
        << badValue;
    EXPECT_NE(badValue.find("at byte 10"), std::string::npos)
        << badValue;

    const std::string emptyEntry =
        messageOf("worker-kill:param=1,,drop-resp:rate=0.1");
    EXPECT_NE(emptyEntry.find("at byte 20"), std::string::npos)
        << emptyEntry;
}

// ------------------------------- retry policy -----------------------

TEST(RetryPolicy, ScheduleIsPureBoundedAndJittered)
{
    hard::RetryPolicy p;
    p.baseDelayUs = 1000;
    p.maxDelayUs = 8000;
    p.jitter = 0.5;

    // Attempt 0 is the initial run: never delayed.
    EXPECT_EQ(p.delayUsFor(7, 0), 0u);

    // Pure function: same inputs, same delay, every time.
    for (unsigned a = 1; a < 6; ++a)
        EXPECT_EQ(p.delayUsFor(7, a), p.delayUsFor(7, a));

    // Jittered exponential within [1-j, 1+j] of the nominal step,
    // capped at maxDelayUs.
    EXPECT_GE(p.delayUsFor(7, 1), 500u);
    EXPECT_LE(p.delayUsFor(7, 1), 1500u);
    EXPECT_GE(p.delayUsFor(7, 10), 4000u);
    EXPECT_LE(p.delayUsFor(7, 10), 12000u);

    // Jitter de-synchronizes a retry storm: not every job waits the
    // same time before attempt 1.
    bool diverged = false;
    for (std::uint64_t job = 1; job < 32 && !diverged; ++job)
        diverged = p.delayUsFor(job, 1) != p.delayUsFor(0, 1);
    EXPECT_TRUE(diverged);

    // jitter=0 is the exact doubling schedule.
    p.jitter = 0.0;
    EXPECT_EQ(p.delayUsFor(3, 1), 1000u);
    EXPECT_EQ(p.delayUsFor(3, 2), 2000u);
    EXPECT_EQ(p.delayUsFor(3, 3), 4000u);
    EXPECT_EQ(p.delayUsFor(3, 4), 8000u);
    EXPECT_EQ(p.delayUsFor(3, 5), 8000u); // capped

    // baseDelayUs=0 restores the no-wait behaviour.
    p.baseDelayUs = 0;
    EXPECT_EQ(p.delayUsFor(3, 4), 0u);
}

TEST(ParallelRetry, BackoffScheduleIsDeterministicAcrossJobCounts)
{
    // The backoff must not break the engine's core contract: results
    // (and the set of attempts made) are identical at jobs=1 and
    // jobs=N, because delays are pure functions of (job, attempt).
    hard::RetryPolicy policy;
    policy.attempts = 3;
    policy.baseDelayUs = 100;
    policy.maxDelayUs = 400;
    policy.jitter = 0.5;

    auto runWith = [&](unsigned jobs,
                       std::vector<std::pair<std::size_t, unsigned>>
                           *calls) {
        std::mutex m;
        auto out = sim::parallelMapRetry(
            12, jobs, policy,
            [&](std::size_t i, unsigned attempt) -> int {
                {
                    std::lock_guard<std::mutex> lk(m);
                    calls->push_back({i, attempt});
                }
                if (attempt < i % 3)
                    throw hard::TransientFault("flaky");
                return static_cast<int>(i * 100 + attempt);
            });
        return out;
    };

    std::vector<std::pair<std::size_t, unsigned>> serialCalls;
    std::vector<std::pair<std::size_t, unsigned>> parallelCalls;
    const auto serial = runWith(1, &serialCalls);
    const auto parallel = runWith(4, &parallelCalls);
    EXPECT_EQ(serial, parallel);
    // Same attempts executed, merely in a different interleaving.
    std::sort(serialCalls.begin(), serialCalls.end());
    std::sort(parallelCalls.begin(), parallelCalls.end());
    EXPECT_EQ(serialCalls, parallelCalls);
}

// ------------------------------- diagnostic dump files --------------

TEST(DiagnosticDumps, WatchdogWritesPerInstanceJsonFiles)
{
    // With a dump directory configured, a watchdog failure must
    // leave a structured JSON post-mortem on disk and name it in
    // the exception, instead of scrolling it past on stderr.
    const std::string dir = ::testing::TempDir();
    auto provoke = [&]() -> std::string {
        FaultInjector inj(
            FaultPlan::parse("wedge-req:at=60000:core=0", 9));
        auto sys = makeHardened(twoCoreBdc(), &inj, false, 100000);
        sys->setDiagnosticDir(dir);
        try {
            sys->run(500000);
        } catch (const WatchdogTimeout &e) {
            return e.dumpPath();
        }
        return "";
    };

    const std::string first = provoke();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first.rfind(dir, 0), 0u) << first;
    EXPECT_NE(first.find("watchdog"), std::string::npos) << first;

    std::ifstream is(first);
    ASSERT_TRUE(is.good()) << "dump file missing: " << first;
    std::ostringstream text;
    text << is.rdbuf();
    const auto doc = obs::json::tryParse(text.str());
    ASSERT_TRUE(doc.has_value()) << "dump is not valid JSON";
    EXPECT_NE(doc->find("reason"), nullptr);

    // A second System instance must never reuse the first one's
    // file names (per-instance counter in the name).
    const std::string second = provoke();
    ASSERT_FALSE(second.empty());
    EXPECT_NE(first, second);
}

} // namespace
} // namespace camo
