/**
 * @file
 * Example: exploring Camouflage's security/performance trade-off
 * space for a workload of your choice (the paper's headline claim is
 * that this space exists at all — CS/TP/FS are single points).
 *
 * Usage: tradeoff_explorer [workload]   (default mcf)
 *
 * Sweeps the shaping budget and the distribution shape, printing one
 * frontier row per configuration. Budgets are credits per 10k-cycle
 * replenishment window for the protected cores.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 800000;

shaper::BinConfig
shapeConfig(const std::string &shape, std::uint32_t budget)
{
    std::vector<std::uint32_t> credits(10, 0);
    if (shape == "uniform") {
        for (auto &c : credits)
            c = std::max(1u, budget / 10);
    } else if (shape == "bursty") {
        std::uint32_t rest = budget;
        for (auto &c : credits) {
            c = std::max(1u, rest / 2);
            rest -= std::min(rest, c);
        }
    } else { // "ramp": the DESIRED-style decreasing ramp
        std::uint32_t granted = 0;
        for (std::size_t i = 0; i < 10; ++i) {
            credits[i] = std::max(
                1u, static_cast<std::uint32_t>(
                        2.0 * budget * (10 - i) / (10 * 11)));
            granted += credits[i];
        }
    }
    return shaper::BinConfig::geometric(credits, 20, 1.7, 10000);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mcf";
    if (!trace::isKnownWorkload(workload)) {
        std::fprintf(stderr, "unknown workload '%s'; try one of:",
                     workload.c_str());
        for (const auto &n : trace::workloadNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const auto mix = sim::adversaryMix("probe", workload);
    const auto reference = sim::unshapedIntrinsicEvents(
        sim::paperConfig(), mix, 1, kRunCycles);
    const Histogram quantizer(shaper::BinConfig::desired().edges);

    // Unprotected corner of the space.
    sim::SystemConfig base_cfg = sim::paperConfig();
    const auto base = sim::runConfig(base_cfg, mix, kRunCycles, 50000);

    std::printf("trade-off frontier for '%s' (protected on cores "
                "1-3; budget = credits / 10k cycles)\n\n",
                workload.c_str());
    std::printf("%-8s %8s %14s %14s %12s\n", "shape", "budget",
                "gap MI (bits)", "app slowdown", "fake/real");
    std::printf("%-8s %8s %14s %14.3f %12s   <- no shaping\n", "-",
                "inf", "= H(X)", 1.0, "-");

    for (const std::string shape : {"uniform", "ramp", "bursty"}) {
        for (const std::uint32_t budget : {28u, 55u, 110u, 220u}) {
            sim::SystemConfig cfg = sim::paperConfig();
            cfg.mitigation = sim::Mitigation::ReqC;
            cfg.shapeCore = {false, true, true, true};
            cfg.reqBins = shapeConfig(shape, budget);
            cfg.recordTraffic = true;
            sim::System system(cfg, mix);
            system.run(kRunCycles);

            auto *sh = system.requestShaper(1);
            const auto mi = security::computeShapingMi(
                reference, sh->postMonitor().events(), quantizer);
            const double slowdown =
                base.ipc[1] / std::max(1e-9, system.coreAt(1).ipc());
            const double fake_ratio =
                sh->bins().realIssued()
                    ? static_cast<double>(sh->bins().fakeIssued()) /
                          sh->bins().realIssued()
                    : 0.0;
            std::printf("%-8s %8u %14.4f %14.2f %12.2f\n",
                        shape.c_str(), budget, mi.miBits, slowdown,
                        fake_ratio);
        }
    }
    std::printf("\npick the row matching your leakage budget; "
                "Camouflage's value is that these rows exist.\n");
    return 0;
}
