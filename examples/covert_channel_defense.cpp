/**
 * @file
 * Example: defeating a covert channel (paper §IV-G, Algorithm 1).
 *
 * A malicious "sender" VM leaks a 32-bit key by modulating its memory
 * traffic; a colluding "receiver" VM decodes the key from its own
 * memory response latencies. Request Camouflage on the sender destroys
 * the channel.
 *
 * Usage: covert_channel_defense [hexkey]   (default DEADBEEF)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/security/covert_receiver.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/covert.h"

using namespace camo;

namespace {

constexpr Cycle kPulse = 20000;
constexpr std::size_t kBits = 32;

void
printBits(const char *label, const std::vector<bool> &bits)
{
    std::printf("%-22s", label);
    for (const bool b : bits)
        std::printf("%c", b ? '1' : '0');
    std::printf("\n");
}

double
attack(std::uint32_t key, bool defended, std::vector<bool> *decoded_out)
{
    char sender[32];
    std::snprintf(sender, sizeof sender, "covert:%08X", key);

    sim::SystemConfig cfg = sim::paperConfig();
    cfg.recordLatencies = true;
    if (defended) {
        cfg.mitigation = sim::Mitigation::ReqC;
        cfg.shapeCore = {true, false, false, false};
        // Short replenishment window so fake traffic takes over well
        // within one pulse (paper SIV-B4).
        cfg.reqBins = shaper::BinConfig::desired(8, 1.5, 2500);
    }
    sim::System system(cfg, {sender, "probe", "sjeng", "sjeng"});
    system.run(kPulse * (kBits + 4));

    security::CovertDecoderConfig dec;
    dec.windowCycles = kPulse;
    const auto decoded =
        security::decodeCovert(system.latencyLog(1), dec, kBits);
    if (decoded_out)
        *decoded_out = decoded.bits;
    return security::bitErrorRate(decoded.bits, trace::keyBits(key));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t key =
        argc > 1
            ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 16))
            : 0xDEADBEEFu;

    std::printf("covert-channel attack: sender leaks key 0x%08X via "
                "memory traffic pulses (%llu cycles/bit)\n\n", key,
                static_cast<unsigned long long>(kPulse));

    std::vector<bool> decoded;
    const double ber_open = attack(key, false, &decoded);
    printBits("key:", trace::keyBits(key));
    printBits("decoded (no defense):", decoded);
    std::printf("bit error rate: %.3f\n\n", ber_open);

    const double ber_defended = attack(key, true, &decoded);
    printBits("decoded (Camouflage):", decoded);
    std::printf("bit error rate: %.3f  (0.5 == random guessing)\n",
                ber_defended);

    if (ber_open < 0.15 && ber_defended > 2 * ber_open)
        std::printf("\nCamouflage degraded the covert channel by "
                    "%.1fx.\n", ber_defended / std::max(0.01, ber_open));
    return 0;
}
