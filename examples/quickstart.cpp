/**
 * @file
 * Quickstart: build the paper's Table II machine, protect it with
 * Bi-directional Camouflage, and compare throughput and leakage
 * against the unprotected baseline.
 */

#include <cstdio>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

int
main()
{
    // A malicious VM ("mcf" here) co-scheduled with three instances of
    // a victim application.
    const auto mix = sim::adversaryMix("mcf", "astar");

    // 1. Unprotected baseline: FR-FCFS, no shaping.
    sim::SystemConfig base_cfg = sim::paperConfig();
    base_cfg.recordTraffic = true;
    sim::System baseline(base_cfg, mix);
    baseline.run(600000);

    // 2. The same machine protected by Bi-directional Camouflage.
    sim::SystemConfig camo_cfg = sim::paperConfig();
    camo_cfg.mitigation = sim::Mitigation::BDC;
    camo_cfg.recordTraffic = true;
    sim::System protected_sys(camo_cfg, mix);
    protected_sys.run(600000);

    std::printf("core | workload | baseline IPC | BDC IPC\n");
    for (std::uint32_t i = 0; i < 4; ++i) {
        std::printf("%4u | %-8s | %12.3f | %7.3f\n", i,
                    mix[i].c_str(), baseline.coreAt(i).ipc(),
                    protected_sys.coreAt(i).ipc());
    }

    // 3. How much timing information leaks from the victim's request
    //    stream? (mutual information between intrinsic and observed)
    // Quantize at the shaper's own ten intervals (the paper's
    // measurement granularity).
    const Histogram quantizer(shaper::BinConfig::desired().edges);
    const auto unshaped = security::computeUnshapedLeakage(
        baseline.intrinsicMonitor(1).events(), quantizer);
    // Cross-run pairing: the intrinsic (unshaped) timing vs the
    // shaped observable (see DESIGN.md SIV-B2 methodology).
    const auto shaped = security::computeShapingMi(
        baseline.intrinsicMonitor(1).events(),
        protected_sys.requestShaper(1)->postMonitor().events(),
        quantizer);

    std::printf("\nleakage (bits): no shaping H(X) = %.3f, "
                "BDC I(X;Y) = %.4f (%.2f%% of unshaped)\n",
                unshaped.miBits, shaped.miBits,
                100.0 * shaped.leakFraction());
    return 0;
}
