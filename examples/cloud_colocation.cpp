/**
 * @file
 * Example: an IaaS operator choosing a memory timing defense.
 *
 * A security-sensitive tenant (core 1, running a bursty server-like
 * workload) is co-scheduled with an untrusted tenant (core 0) that
 * probes its own memory latencies. For every available mitigation we
 * report: what the prober learns about the tenant (windowed MI), the
 * tenant's own slowdown, and total machine throughput — the paper's
 * Figure 2 decision, taken at one operating point.
 */

#include <cstdio>
#include <vector>

#include "src/security/mutual_information.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"

using namespace camo;

namespace {

constexpr Cycle kRunCycles = 3000000;
constexpr Cycle kMiWindow = 10000;

struct Choice
{
    const char *name;
    sim::Mitigation mitigation;
};

} // namespace

int
main()
{
    const auto mix = sim::adversaryMix("probe", "apache");

    // Reference: the unprotected machine.
    sim::SystemConfig base_cfg = sim::paperConfig();
    base_cfg.recordTraffic = true;
    base_cfg.recordLatencies = true;
    sim::System base(base_cfg, mix);
    base.run(kRunCycles);
    const double base_tenant_ipc = base.coreAt(1).ipc();
    double base_tput = 0;
    for (std::uint32_t i = 1; i < 4; ++i)
        base_tput += base.coreAt(i).ipc();

    const std::vector<Choice> choices = {
        {"none (FR-FCFS)", sim::Mitigation::None},
        {"TP  [Wang'14]", sim::Mitigation::TP},
        {"FS  [Shafiee'15]", sim::Mitigation::FS},
        {"CS  [Fletcher'14]", sim::Mitigation::CS},
        {"ReqC (Camouflage)", sim::Mitigation::ReqC},
        {"RespC (Camouflage)", sim::Mitigation::RespC},
        {"BDC (Camouflage)", sim::Mitigation::BDC},
    };

    std::printf("untrusted prober on core 0; protected tenant "
                "(apache) on cores 1-3\n\n");
    std::printf("%-20s %14s %16s %12s\n", "defense",
                "leak (bits)", "tenant slowdown", "throughput");

    for (const Choice &c : choices) {
        sim::SystemConfig cfg = sim::paperConfig();
        cfg.mitigation = c.mitigation;
        cfg.recordTraffic = true;
        cfg.recordLatencies = true;
        if (c.mitigation == sim::Mitigation::RespC) {
            // Shape the prober's responses: the tight default budget
            // pins its observations regardless of tenant activity.
            cfg.shapeCore = {true, false, false, false};
        } else {
            cfg.shapeCore = {false, true, true, true}; // the tenant
            // Provision the Camouflage budget near the tenant's
            // average demand (2x the DESIRED default) — see
            // EXPERIMENTS.md on budget provisioning.
            for (auto &credits : cfg.reqBins.credits)
                credits *= 2;
            for (auto &credits : cfg.respBins.credits)
                credits *= 2;
        }

        sim::System system(cfg, mix);
        system.run(kRunCycles);

        const auto mi = security::computeWindowedCrossMi(
            system.intrinsicMonitor(1).events(), system.latencyLog(0),
            kMiWindow, 4);
        double tput = 0;
        for (std::uint32_t i = 1; i < 4; ++i)
            tput += system.coreAt(i).ipc();
        const double slowdown =
            base_tenant_ipc / std::max(1e-9, system.coreAt(1).ipc());

        std::printf("%-20s %14.4f %16.2f %12.3f\n", c.name, mi.miBits,
                    slowdown, tput);
    }

    std::printf("\nreference throughput without any defense: %.3f\n",
                base_tput);
    std::printf("Camouflage rows should hold leakage near the "
                "TP/FS level at a fraction of their slowdown.\n");
    return 0;
}
