/**
 * @file
 * benchdiff — compare two perf reports and gate on regressions.
 *
 *   benchdiff [--threshold=F] [--gate-absolute] BASELINE.json NEW.json
 *
 * Prints a metric-by-metric table (see src/obs/benchdiff.h for which
 * metrics are gated vs informational) and exits 1 when any gated
 * metric regressed beyond the threshold (default 0.10 = 10%), so CI
 * can track the simulator's performance trajectory against the
 * committed BENCH_ticks.json baseline.
 *
 * Exit codes: 0 no gated regression, 1 regression, 2 usage/IO/parse
 * error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/benchdiff.h"
#include "src/obs/json.h"

using namespace camo;

namespace {

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: benchdiff [--threshold=F] [--gate-absolute] "
                 "BASELINE.json NEW.json\n"
                 "  --threshold=F     relative regression tolerance "
                 "(default 0.10)\n"
                 "  --gate-absolute   gate host-dependent metrics "
                 "(ticks/sec, wall\n"
                 "                    seconds) too, not just "
                 "machine-independent ratios\n");
}

bool
loadJson(const std::string &path, obs::json::Value &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "benchdiff: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const auto parsed = obs::json::tryParse(ss.str());
    if (!parsed) {
        std::fprintf(stderr, "benchdiff: %s is not valid JSON\n",
                     path.c_str());
        return false;
    }
    out = *parsed;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::DiffOptions opts;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        if (arg == "--gate-absolute") {
            opts.gateAbsolute = true;
            continue;
        }
        if (arg.rfind("--threshold=", 0) == 0) {
            const std::string v = arg.substr(12);
            char *end = nullptr;
            opts.threshold = std::strtod(v.c_str(), &end);
            if (v.empty() || *end != '\0' || opts.threshold < 0.0) {
                std::fprintf(stderr,
                             "benchdiff: bad --threshold '%s'\n",
                             v.c_str());
                return 2;
            }
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "benchdiff: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
        files.push_back(arg);
    }
    if (files.size() != 2) {
        usage(stderr);
        return 2;
    }

    obs::json::Value before, after;
    if (!loadJson(files[0], before) || !loadJson(files[1], after))
        return 2;

    const obs::DiffReport report =
        obs::diffBenchReports(before, after, opts);
    std::printf("%s", report.text().c_str());
    return report.ok() ? 0 : 1;
}
