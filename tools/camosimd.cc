/**
 * @file
 * camosimd — the persistent Camouflage experiment daemon.
 *
 * Accepts simulation jobs over a local Unix-domain socket
 * (length-prefixed JSON frames; see src/server/protocol.h) and
 * executes them on a supervised pool where every attempt runs in a
 * forked, crash-isolated child. A job that SIGSEGVs, stalls, or
 * times out is a classified per-job outcome; the daemon stays up.
 *
 *   camosimd --socket=/tmp/camosimd.sock --workers=4 &
 *   camosim_client --socket=/tmp/camosimd.sock submit \
 *       --config=machine.json --wait
 *
 * Lifecycle: SIGTERM/SIGINT drain the queue (stop admission, finish
 * in-flight jobs) and exit 0. SIGHUP re-applies the startup limits
 * (queue depth, deadline, retry budget, cache size) without dropping
 * queued jobs. Exit codes: 0 clean drain, 1 runtime failure,
 * 2 usage.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/build_info.h"
#include "src/server/server.h"

using namespace camo;

namespace {

server::Server *g_server = nullptr;

void
onSignal(int sig)
{
    if (!g_server)
        return;
    if (sig == SIGHUP)
        g_server->notifyReload();
    else
        g_server->notifyShutdown();
}

struct Options
{
    server::ServerConfig server;
    bool help = false;
    bool version = false;
};

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s --socket=PATH [options]\n"
        "  --socket=PATH       Unix-domain socket to listen on\n"
        "  --workers=N         supervisor threads (default 2)\n"
        "  --queue=N           max queued jobs before shedding "
        "(default 256)\n"
        "  --timeout-ms=N      default per-attempt wall-clock "
        "deadline\n"
        "                      (default 120000, 0 = none)\n"
        "  --retries=N         attempts per job on transient faults "
        "and\n"
        "                      crashes (default 3)\n"
        "  --cache=N           result-cache entries (default 128, "
        "0 = off)\n"
        "  --terminal-jobs=N   terminal job records retained for "
        "status/result\n"
        "                      queries (default 4096, 0 = "
        "unbounded)\n"
        "  --diag-dir=DIR      per-instance diagnostic dump files\n"
        "  --version           print build provenance and exit\n",
        argv0);
}

bool
parseU64(const std::string &value, std::uint64_t *out)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        value[0] == '-')
        return false;
    *out = v;
    return true;
}

bool
parseArgs(int argc, char **argv, Options *opt, std::string *err)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            opt->help = true;
            return true;
        }
        if (arg == "--version") {
            opt->version = true;
            return true;
        }
        const auto eq = arg.find('=');
        if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
            *err = "unknown option '" + arg + "'";
            return false;
        }
        const std::string name = arg.substr(2, eq - 2);
        const std::string value = arg.substr(eq + 1);
        std::uint64_t n = 0;
        if (name == "socket") {
            opt->server.socketPath = value;
        } else if (name == "diag-dir") {
            opt->server.service.diagDir = value;
        } else if (!parseU64(value, &n)) {
            *err = "--" + name + "=" + value +
                   " is not an unsigned integer";
            return false;
        } else if (name == "workers") {
            opt->server.service.workers = static_cast<unsigned>(n);
        } else if (name == "queue") {
            opt->server.service.maxQueue = n;
        } else if (name == "timeout-ms") {
            opt->server.service.defaultTimeoutMs = n;
        } else if (name == "retries") {
            opt->server.service.retry.attempts =
                static_cast<unsigned>(n);
        } else if (name == "cache") {
            opt->server.service.maxCacheEntries = n;
        } else if (name == "terminal-jobs") {
            opt->server.service.maxTerminalJobs = n;
        } else {
            *err = "unknown option '--" + name + "'";
            return false;
        }
    }
    if (opt->server.socketPath.empty()) {
        *err = "--socket=PATH is required";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::string err;
    if (!parseArgs(argc, argv, &opt, &err)) {
        std::fprintf(stderr, "camosimd: %s\n", err.c_str());
        printUsage(stderr, argv[0]);
        return 2;
    }
    if (opt.help) {
        printUsage(stdout, argv[0]);
        return 0;
    }
    if (opt.version) {
        std::printf("%s\n", buildVersionLine().c_str());
        return 0;
    }

    // A client vanishing mid-response must be an EPIPE errno, not a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    server::Server srv(opt.server);
    if (!srv.start(&err)) {
        std::fprintf(stderr, "camosimd: %s\n", err.c_str());
        return 1;
    }
    g_server = &srv;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGHUP, onSignal);

    std::printf("camosimd: listening on %s (%u workers)\n",
                opt.server.socketPath.c_str(),
                opt.server.service.workers);
    std::fflush(stdout);

    const int code = srv.run();
    g_server = nullptr;
    std::printf("camosimd: drained, exiting %d\n", code);
    return code;
}
