/**
 * @file
 * camosim_client — command-line client for the camosimd daemon.
 *
 *   camosim_client --socket=S submit --config=FILE [--cycles=N]
 *       [--warmup=N] [--seed=N] [--watchdog=N] [--checkers]
 *       [--inject=SPEC] [--timeout-ms=N] [--wait[=MS]]
 *   camosim_client --socket=S status --id=N
 *   camosim_client --socket=S result --id=N [--wait=MS]
 *   camosim_client --socket=S cancel --id=N
 *   camosim_client --socket=S stats
 *   camosim_client --socket=S drain
 *   camosim_client --socket=S reload [--queue=N] [--timeout-ms=N]
 *       [--retries=N] [--cache=N]
 *
 * Responses print as JSON on stdout. Exit codes: 0 ok, 1 the server
 * reported an error or the job failed, 2 usage error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/server/client.h"
#include "src/server/protocol.h"

using namespace camo;

namespace {

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s --socket=PATH COMMAND [options]\n"
        "commands:\n"
        "  submit --config=FILE [--cycles=N] [--warmup=N] "
        "[--seed=N]\n"
        "         [--watchdog=N] [--checkers] [--inject=SPEC]\n"
        "         [--timeout-ms=N] [--wait[=MS]]\n"
        "  status --id=N\n"
        "  result --id=N [--wait=MS]\n"
        "  cancel --id=N\n"
        "  stats\n"
        "  drain\n"
        "  reload [--queue=N] [--timeout-ms=N] [--retries=N] "
        "[--cache=N]\n",
        argv0);
}

bool
parseU64(const std::string &value, std::uint64_t *out)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        value[0] == '-')
        return false;
    *out = v;
    return true;
}

struct Cli
{
    std::string socket;
    std::string command;
    std::string configFile;
    std::string inject;
    std::uint64_t id = 0;
    bool haveId = false;
    std::uint64_t waitMs = 0;
    bool wait = false;
    bool checkers = false;
    server::JobSpec spec;
    obs::json::Value limits = obs::json::Value::makeObject();
};

int
fail(const std::string &msg)
{
    std::fprintf(stderr, "camosim_client: %s\n", msg.c_str());
    return 1;
}

/** Exit 1 unless the response has ok:true; print it either way. */
int
report(const std::optional<obs::json::Value> &resp)
{
    if (!resp)
        return fail("connection lost");
    std::printf("%s\n", resp->dump(2).c_str());
    const obs::json::Value *ok = resp->find("ok");
    return ok && ok->isBool() && ok->asBool() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGPIPE, SIG_IGN);
    Cli cli;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout, argv[0]);
            return 0;
        }
        if (arg.rfind("--", 0) != 0) {
            if (!cli.command.empty()) {
                std::fprintf(stderr,
                             "camosim_client: one command only\n");
                return 2;
            }
            cli.command = arg;
            continue;
        }
        const auto eq = arg.find('=');
        const std::string name = arg.substr(2, eq - 2);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        std::uint64_t n = 0;
        const bool isNum = parseU64(value, &n);
        if (name == "socket") {
            cli.socket = value;
        } else if (name == "config") {
            cli.configFile = value;
        } else if (name == "inject") {
            cli.spec.inject = value;
        } else if (name == "checkers" && value.empty()) {
            cli.spec.checkers = true;
        } else if (name == "wait") {
            cli.wait = true;
            cli.waitMs = value.empty() ? 600000 : n;
            if (!value.empty() && !isNum) {
                std::fprintf(stderr,
                             "camosim_client: bad --wait value\n");
                return 2;
            }
        } else if (!isNum) {
            std::fprintf(
                stderr,
                "camosim_client: --%s needs an unsigned integer\n",
                name.c_str());
            return 2;
        } else if (name == "id") {
            cli.id = n;
            cli.haveId = true;
        } else if (name == "cycles") {
            cli.spec.cycles = n;
        } else if (name == "warmup") {
            cli.spec.warmup = n;
        } else if (name == "seed") {
            cli.spec.seed = n;
        } else if (name == "watchdog") {
            cli.spec.watchdog = n;
        } else if (name == "inject-seed") {
            cli.spec.injectSeed = n;
        } else if (name == "timeout-ms") {
            cli.spec.timeoutMs = n;
            cli.limits["timeout_ms"] = n;
        } else if (name == "crash-attempts") {
            cli.spec.crashAttempts = n;
        } else if (name == "queue") {
            cli.limits["max_queue"] = n;
        } else if (name == "retries") {
            cli.limits["retries"] = n;
        } else if (name == "cache") {
            cli.limits["cache_entries"] = n;
        } else {
            std::fprintf(stderr,
                         "camosim_client: unknown option '--%s'\n",
                         name.c_str());
            return 2;
        }
    }
    if (cli.socket.empty() || cli.command.empty()) {
        printUsage(stderr, argv[0]);
        return 2;
    }

    server::Client client;
    std::string err;
    if (!client.connect(cli.socket, &err))
        return fail(err);

    if (cli.command == "submit") {
        if (cli.configFile.empty()) {
            std::fprintf(stderr,
                         "camosim_client: submit needs "
                         "--config=FILE\n");
            return 2;
        }
        std::ifstream is(cli.configFile);
        if (!is)
            return fail("cannot read " + cli.configFile);
        std::ostringstream text;
        text << is.rdbuf();
        const auto doc = obs::json::tryParse(text.str());
        if (!doc)
            return fail(cli.configFile + " is not valid JSON");
        cli.spec.config = *doc;
        const auto id = client.submit(cli.spec, &err);
        if (!id)
            return fail(err);
        if (!cli.wait) {
            obs::json::Value v = server::okResponse();
            v["id"] = *id;
            std::printf("%s\n", v.dump(2).c_str());
            return 0;
        }
        return report(client.waitResult(*id, cli.waitMs));
    }
    if (cli.command == "status" || cli.command == "result" ||
        cli.command == "cancel") {
        if (!cli.haveId) {
            std::fprintf(stderr, "camosim_client: %s needs --id=N\n",
                         cli.command.c_str());
            return 2;
        }
        if (cli.command == "status")
            return report(client.status(cli.id));
        if (cli.command == "result")
            return report(client.waitResult(
                cli.id, cli.wait ? cli.waitMs : 0));
        obs::json::Value req = obs::json::Value::makeObject();
        req["op"] = "cancel";
        req["id"] = cli.id;
        return report(client.request(req));
    }
    if (cli.command == "stats")
        return report(client.stats());
    if (cli.command == "drain") {
        obs::json::Value req = obs::json::Value::makeObject();
        req["op"] = "drain";
        return report(client.request(req));
    }
    if (cli.command == "reload") {
        obs::json::Value req = obs::json::Value::makeObject();
        req["op"] = "reload";
        if (!cli.limits.asObject().empty())
            req["limits"] = cli.limits;
        return report(client.request(req));
    }
    std::fprintf(stderr, "camosim_client: unknown command '%s'\n",
                 cli.command.c_str());
    printUsage(stderr, argv[0]);
    return 2;
}
