/**
 * @file
 * camosim — command-line driver for the Camouflage simulator.
 *
 * Runs a workload mix on the paper's Table II machine under a chosen
 * mitigation and prints per-core results (optionally as CSV), with
 * knobs for the interesting configuration surface. Examples:
 *
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc
 *   camosim --workloads=probe,apache,apache,apache --mitigation=respc \
 *           --shape-cores=0 --cycles=2000000 --csv
 *   camosim --workloads=bzip,astar,astar,astar --mitigation=bdc --ga
 *   camosim --config=machine.json --cycles=500000
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --trace=t.jsonl --stats-json=s.json --interval-stats=10000
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --checkers --watchdog=200000 \
 *           --inject=corrupt-credits:at=80000:core=0
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --profile --profile-out=prof.json --chrome-trace=t.json
 *   camosim --workloads=covert:5A5A5A5A,apache,apache,apache \
 *           --leakmon=0.2
 *
 * The command line is table-driven: every flag is one FlagSpec row in
 * flagTable() below, which generates its parsing, value checking, and
 * usage text. To add a flag, add a row.
 *
 * Exit codes: 0 success, 1 runtime error, 2 usage error, 3 invalid
 * configuration, 4 invariant violation, 5 watchdog timeout, 6 leakage
 * alert.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/build_info.h"
#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/obs/benchdiff.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/leakmon.h"
#include "src/obs/prof.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/scenario/scenario.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/shard.h"
#include "src/sim/runner.h"
#include "src/sim/topology.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

/** Exit codes (keep in sync with the file header and README). */
enum ExitCode
{
    kExitOk = 0,
    kExitRuntime = 1,
    kExitUsage = 2,
    kExitConfig = 3,
    kExitInvariant = 4,
    kExitWatchdog = 5,
    kExitLeakage = 6,
};

/** A command-line problem: reported with usage help, exit code 2. */
struct UsageError : std::runtime_error
{
    explicit UsageError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

struct Options
{
    std::vector<std::string> workloads;
    sim::Mitigation mitigation = sim::Mitigation::None;
    Cycle cycles = 1000000;
    Cycle warmup = 50000;
    std::uint64_t seed = 1;
    std::uint32_t channels = 1;
    bool fakeTraffic = true;
    bool randomizeTiming = false;
    bool csv = false;
    bool runGa = false;
    bool gaOffline = false;
    std::size_t gaGenerations = 8;
    std::size_t gaPopulation = 14;
    std::vector<bool> shapeCores; // empty = all
    unsigned jobs = 0;            // 0 = defaultJobs()
    unsigned shardProcs = 1;      // 1 = in-process only
    std::uint32_t sweepSeeds = 0; // 0 = single run
    bool fastForward = true;
    bool help = false;
    bool version = false;
    bool listScenarios = false;
    std::string scenarioRef; ///< --scenario=NAME[:open|:shaped]

    /** Loaded by --config or --scenario; its SystemConfig is the base
     *  every other flag overrides. */
    std::optional<sim::TopologyConfig> topo;

    // Observability outputs.
    std::string traceFile;
    std::string traceFormat; // empty = unset (default jsonl)
    std::string statsJsonFile;
    Cycle intervalStats = 0;
    std::string intervalCsvFile;

    // Host-time profiler + Chrome-trace export.
    bool profile = false;
    std::string profileOut;
    std::string profileFolded;
    std::string chromeTraceFile;

    // Online leakage monitor.
    bool leakmon = false;
    double leakmonThreshold =
        std::numeric_limits<double>::infinity();
    Cycle leakmonWindow = 0; // 0 = library default
    std::uint32_t leakmonCore = 0;
    bool leakmonCoreSet = false;

    // Hardening layer.
    bool checkers = false;
    bool checkersRecover = false;
    Cycle watchdogWindow = 0; // 0 = off
    std::string injectSpec;
    std::uint64_t injectSeed = 0; // 0 = use --seed
    std::string diagDir; // "" = dumps go to stderr
};

/** Strict full-string unsigned parse; rejects "12x", "", "-3". */
std::uint64_t
parseU64Flag(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        value[0] == '-') {
        throw UsageError(flag + "=" + value +
                         " is not an unsigned integer");
    }
    return v;
}

/** Strict full-string non-negative double parse. */
double
parseDoubleFlag(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        !(v >= 0.0)) {
        throw UsageError(flag + "=" + value +
                         " is not a non-negative number");
    }
    return v;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * One command-line flag: its name, whether it takes a value, its
 * usage text, and the action applying it to Options. The one table
 * below drives parsing, value-shape validation, and --help output.
 */
struct FlagSpec
{
    enum class Arity
    {
        Bare,  ///< --flag
        Value, ///< --flag=VALUE
        Either ///< --flag or --flag=VALUE
    };

    std::string name;      ///< without the leading "--"
    Arity arity;
    std::string valueHint; ///< shown in usage, e.g. "N" ("" for Bare)
    std::string help;      ///< '\n' starts an indented continuation
    /** Applies the flag; `value` is "" for a bare occurrence. */
    std::function<void(Options &, const std::string &)> apply;
};

/** --config/--scenario: seed the flag defaults from the topology, so
 *  later flags override the file (two-layer configuration). */
void
applyTopology(Options &opt)
{
    const sim::TopologyConfig &t = *opt.topo;
    opt.workloads = t.workloads;
    opt.mitigation = t.system.mitigation;
    opt.seed = t.system.seed;
    opt.channels = t.system.mc.org.channels;
    opt.fakeTraffic = t.system.fakeTraffic;
    opt.randomizeTiming = t.system.randomizeTiming;
    opt.shapeCores = t.system.shapeCore;
    opt.fastForward = t.system.fastForward;
}

void
applyConfigFile(Options &opt, const std::string &path)
{
    opt.topo = sim::loadTopology(path);
    applyTopology(opt);
}

/** --scenario: resolve the registered scenario's embedded topology
 *  (same two-layer override semantics as --config). */
void
applyScenario(Options &opt, const std::string &ref)
{
    opt.topo = sim::parseTopology(scenario::scenarioTopologyJson(ref));
    applyTopology(opt);
}

const std::vector<FlagSpec> &
flagTable()
{
    using A = FlagSpec::Arity;
    auto u64 = [](Cycle Options::*field, const char *flag) {
        return [field, flag](Options &o, const std::string &v) {
            o.*field = parseU64Flag(flag, v);
        };
    };
    static const std::vector<FlagSpec> table = {
        {"workloads", A::Value, "w0,w1,...",
         "one per core (default mcf,astar x3)",
         [](Options &o, const std::string &v) {
             o.workloads = splitCommas(v);
         }},
        {"config", A::Value, "FILE",
         "JSON machine description (topology, bins,\nmitigation; see "
         "src/sim/topology.h); other\nflags override its values",
         applyConfigFile},
        {"scenario", A::Value, "NAME[:VAR]",
         "run a registered attack scenario's\ntopology (variant open "
         "or shaped,\ndefault open); exclusive with --config;\nsee "
         "--list-scenarios",
         [](Options &o, const std::string &v) { o.scenarioRef = v; }},
        {"list-scenarios", A::Bare, "",
         "print the attack-scenario catalog\nand exit",
         [](Options &o, const std::string &) {
             o.listScenarios = true;
         }},
        {"mitigation", A::Value, "M", "none|cs|reqc|respc|bdc|tp|fs",
         [](Options &o, const std::string &v) {
             const auto m = sim::mitigationFromName(v);
             if (!m) {
                 throw UsageError(
                     "unknown mitigation '" + v +
                     "' (expected none, cs, reqc, respc, bdc, tp, "
                     "or fs)");
             }
             o.mitigation = *m;
         }},
        {"cycles", A::Value, "N", "measurement window (CPU cycles)",
         u64(&Options::cycles, "--cycles")},
        {"warmup", A::Value, "N", "warmup window before measuring",
         u64(&Options::warmup, "--warmup")},
        {"seed", A::Value, "N", "deterministic RNG seed",
         [](Options &o, const std::string &v) {
             o.seed = parseU64Flag("--seed", v);
         }},
        {"channels", A::Value, "N", "DRAM channels (default 1)",
         [](Options &o, const std::string &v) {
             o.channels = static_cast<std::uint32_t>(
                 parseU64Flag("--channels", v));
         }},
        {"no-fakes", A::Bare, "", "disable fake traffic generation",
         [](Options &o, const std::string &) { o.fakeTraffic = false; }},
        {"randomize-timing", A::Bare, "", "SIV-B4 random slack",
         [](Options &o, const std::string &) {
             o.randomizeTiming = true;
         }},
        {"shape-cores", A::Value, "i,j,...",
         "shape only the listed cores",
         [](Options &o, const std::string &v) {
             o.shapeCores.assign(o.workloads.size(), false);
             for (const auto &idx : splitCommas(v)) {
                 const auto c = parseU64Flag("--shape-cores", idx);
                 if (c >= o.shapeCores.size()) {
                     throw UsageError(
                         "--shape-cores index " + idx +
                         " is out of range (have " +
                         std::to_string(o.shapeCores.size()) +
                         " cores)");
                 }
                 o.shapeCores[static_cast<std::size_t>(c)] = true;
             }
         }},
        {"ga", A::Bare, "",
         "tune bins online first\n(with --ga-gens=N --ga-pop=N)",
         [](Options &o, const std::string &) { o.runGa = true; }},
        {"ga-offline", A::Bare, "",
         "tune offline instead: fresh system\nper child, evaluated "
         "across --jobs",
         [](Options &o, const std::string &) {
             o.runGa = true;
             o.gaOffline = true;
         }},
        {"ga-gens", A::Value, "N", "GA generations (default 8)",
         [](Options &o, const std::string &v) {
             o.gaGenerations = static_cast<std::size_t>(
                 parseU64Flag("--ga-gens", v));
         }},
        {"ga-pop", A::Value, "N", "GA population (default 14)",
         [](Options &o, const std::string &v) {
             o.gaPopulation = static_cast<std::size_t>(
                 parseU64Flag("--ga-pop", v));
         }},
        {"jobs", A::Value, "N",
         "worker threads for parallel phases\n(default: CAMO_JOBS env "
         "or core count)",
         [](Options &o, const std::string &v) {
             o.jobs = static_cast<unsigned>(parseU64Flag("--jobs", v));
         }},
        {"shard-procs", A::Value, "N",
         "fork N processes for --sweep-seeds /\n--ga-offline (worker "
         "threads run inside\neach); results are byte-identical to\n"
         "--shard-procs=1",
         [](Options &o, const std::string &v) {
             o.shardProcs = static_cast<unsigned>(
                 parseU64Flag("--shard-procs", v));
             if (o.shardProcs == 0)
                 throw UsageError("--shard-procs must be > 0");
         }},
        {"sweep-seeds", A::Value, "K",
         "run seeds seed..seed+K-1 in parallel\nand print one row per "
         "seed",
         [](Options &o, const std::string &v) {
             o.sweepSeeds = static_cast<std::uint32_t>(
                 parseU64Flag("--sweep-seeds", v));
         }},
        {"no-fast-forward", A::Bare, "",
         "force the per-cycle loop (debugging;\nresults are identical "
         "either way)",
         [](Options &o, const std::string &) { o.fastForward = false; }},
        {"csv", A::Bare, "", "machine-readable output",
         [](Options &o, const std::string &) { o.csv = true; }},
        {"trace", A::Value, "FILE", "cycle-stamped event trace",
         [](Options &o, const std::string &v) { o.traceFile = v; }},
        {"trace-format", A::Value, "F", "jsonl (default) | csv | bin",
         [](Options &o, const std::string &v) { o.traceFormat = v; }},
        {"stats-json", A::Value, "FILE",
         "hierarchical stats tree as JSON",
         [](Options &o, const std::string &v) { o.statsJsonFile = v; }},
        {"interval-stats", A::Value, "N",
         "snapshot metrics every N cycles",
         u64(&Options::intervalStats, "--interval-stats")},
        {"interval-csv", A::Value, "FILE",
         "write the interval series as CSV",
         [](Options &o, const std::string &v) {
             o.intervalCsvFile = v;
         }},
        {"checkers", A::Either, "recover",
         "runtime invariant checkers; =recover\ndegrades a violating "
         "shaper to the\nfail-secure schedule instead of\nstopping "
         "(exit 4 on violation)",
         [](Options &o, const std::string &v) {
             if (!v.empty() && v != "recover") {
                 throw UsageError(
                     "--checkers accepts only '=recover', got '" + v +
                     "'");
             }
             o.checkers = true;
             o.checkersRecover = !v.empty();
         }},
        {"watchdog", A::Value, "N",
         "fail if a core with pending work\nmakes no progress for N "
         "cycles\n(exit 5, diagnostic dump on stderr)",
         [](Options &o, const std::string &v) {
             o.watchdogWindow = parseU64Flag("--watchdog", v);
             if (o.watchdogWindow == 0)
                 throw UsageError("--watchdog window must be > 0");
         }},
        {"inject", A::Value, "SPEC",
         "fault-injection campaign, e.g.\n"
         "drop-resp:rate=0.001,wedge-req:at=9000",
         [](Options &o, const std::string &v) { o.injectSpec = v; }},
        {"inject-seed", A::Value, "N",
         "injection RNG seed (default --seed)",
         [](Options &o, const std::string &v) {
             o.injectSeed = parseU64Flag("--inject-seed", v);
         }},
        {"diag-dir", A::Value, "DIR",
         "write watchdog/invariant/leakage\ndiagnostic dumps as "
         "uniquely-named JSON\nfiles in DIR instead of stderr",
         [](Options &o, const std::string &v) { o.diagDir = v; }},
        {"profile", A::Bare, "",
         "host-time profile of the kernel loop;\nprints a per-phase "
         "summary",
         [](Options &o, const std::string &) { o.profile = true; }},
        {"profile-out", A::Value, "FILE",
         "profile tree as JSON (implies --profile)",
         [](Options &o, const std::string &v) {
             o.profile = true;
             o.profileOut = v;
         }},
        {"profile-folded", A::Value, "FILE",
         "folded stacks for flamegraph.pl /\nspeedscope (implies "
         "--profile)",
         [](Options &o, const std::string &v) {
             o.profile = true;
             o.profileFolded = v;
         }},
        {"chrome-trace", A::Value, "FILE",
         "Chrome trace-event JSON (load in\nPerfetto); request "
         "lifecycles in\nsimulated time plus, with --profile,\n"
         "host-time spans",
         [](Options &o, const std::string &v) {
             o.chromeTraceFile = v;
         }},
        {"leakmon", A::Either, "BITS",
         "online windowed-MI leakage monitor;\n=BITS alerts (exit 6) "
         "above the\nthreshold, bare monitors only",
         [](Options &o, const std::string &v) {
             o.leakmon = true;
             if (!v.empty())
                 o.leakmonThreshold = parseDoubleFlag("--leakmon", v);
         }},
        {"leakmon-window", A::Value, "N",
         "sliding-window width in cycles\n(default 50000)",
         [](Options &o, const std::string &v) {
             o.leakmonWindow = parseU64Flag("--leakmon-window", v);
             if (o.leakmonWindow == 0)
                 throw UsageError("--leakmon-window must be > 0");
         }},
        {"leakmon-core", A::Value, "N",
         "core whose streams are monitored\n(default 0)",
         [](Options &o, const std::string &v) {
             o.leakmonCore = static_cast<std::uint32_t>(
                 parseU64Flag("--leakmon-core", v));
             o.leakmonCoreSet = true;
         }},
        {"version", A::Bare, "",
         "print build provenance and exit",
         [](Options &o, const std::string &) { o.version = true; }},
    };
    return table;
}

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(out, "usage: %s [options]\n", argv0);
    for (const FlagSpec &f : flagTable()) {
        std::string label = "--" + f.name;
        if (f.arity == FlagSpec::Arity::Value)
            label += "=" + f.valueHint;
        else if (f.arity == FlagSpec::Arity::Either)
            label += "[=" + f.valueHint + "]";
        // First help line sits beside the label; '\n' continuations
        // are indented to the same help column.
        std::size_t start = 0;
        bool first = true;
        while (start <= f.help.size()) {
            const auto nl = f.help.find('\n', start);
            const std::string line =
                nl == std::string::npos
                    ? f.help.substr(start)
                    : f.help.substr(start, nl - start);
            std::fprintf(out, "  %-24s%s\n",
                         first ? label.c_str() : "", line.c_str());
            first = false;
            if (nl == std::string::npos)
                break;
            start = nl + 1;
        }
    }
    std::fprintf(out, "workloads: ");
    for (const auto &n : trace::workloadNames())
        std::fprintf(out, "%s ", n.c_str());
    std::fprintf(out, "probe covert:HEX\n");
}

const FlagSpec *
findFlag(const std::string &name)
{
    for (const FlagSpec &f : flagTable()) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

/**
 * Parse the command line against the flag table. Throws UsageError
 * (never exits) on unknown flags, malformed values, or invalid flag
 * combinations, each with a one-line reason. --config is applied
 * before the other flags so they override the file regardless of
 * their position on the line.
 */
Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.workloads = {"mcf", "astar", "astar", "astar"};

    struct Action
    {
        const FlagSpec *spec;
        std::string value;
    };
    std::vector<Action> actions;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            opt.help = true;
            return opt;
        }
        if (arg.rfind("--", 0) != 0)
            throw UsageError("unknown option '" + arg + "'");
        const auto eq = arg.find('=');
        const std::string name = arg.substr(2, eq - 2);
        const bool hasValue = eq != std::string::npos;
        const FlagSpec *spec = findFlag(name);
        if (!spec)
            throw UsageError("unknown option '--" + name + "'");
        if (spec->arity == FlagSpec::Arity::Bare && hasValue) {
            throw UsageError("--" + name + " does not take a value");
        }
        if (spec->arity == FlagSpec::Arity::Value && !hasValue) {
            throw UsageError("--" + name + " requires =" +
                             spec->valueHint);
        }
        actions.push_back(
            {spec, hasValue ? arg.substr(eq + 1) : std::string()});
    }

    // --config/--scenario first: they supply the defaults everything
    // else overrides, independent of flag order.
    for (const Action &a : actions) {
        if (a.spec->name == "config" || a.spec->name == "scenario")
            a.spec->apply(opt, a.value);
    }
    if (!opt.scenarioRef.empty()) {
        if (opt.topo) {
            throw UsageError(
                "--scenario and --config both supply a topology; "
                "pick one");
        }
        applyScenario(opt, opt.scenarioRef);
    }
    for (const Action &a : actions) {
        if (a.spec->name != "config" && a.spec->name != "scenario")
            a.spec->apply(opt, a.value);
    }
    if (opt.listScenarios)
        return opt;

    // Cross-flag validation (single-flag value checking lives in the
    // table rows above).
    for (const auto &w : opt.workloads) {
        if (!trace::isKnownWorkload(w))
            throw UsageError("unknown workload '" + w + "'");
    }
    if (!opt.traceFormat.empty() && opt.traceFile.empty()) {
        throw UsageError(
            "--trace-format without --trace=FILE has no effect");
    }
    if (!opt.traceFormat.empty() && opt.traceFormat != "jsonl" &&
        opt.traceFormat != "csv" && opt.traceFormat != "bin") {
        throw UsageError("unknown trace format '" + opt.traceFormat +
                         "' (expected jsonl, csv, or bin)");
    }
    if (!opt.intervalCsvFile.empty() && opt.intervalStats == 0)
        throw UsageError("--interval-csv needs --interval-stats=N");
    if (opt.runGa && opt.mitigation != sim::Mitigation::BDC &&
        opt.mitigation != sim::Mitigation::ReqC &&
        opt.mitigation != sim::Mitigation::RespC) {
        throw UsageError(
            "--ga needs a Camouflage mitigation (reqc, respc, or "
            "bdc)");
    }
    if (!opt.chromeTraceFile.empty() && !opt.traceFile.empty()) {
        throw UsageError(
            "--chrome-trace and --trace both claim the event stream; "
            "pick one");
    }
    if ((opt.leakmonWindow > 0 || opt.leakmonCoreSet) && !opt.leakmon)
        throw UsageError(
            "--leakmon-window/--leakmon-core need --leakmon");
    if (opt.sweepSeeds > 0) {
        if (!opt.traceFile.empty() || !opt.statsJsonFile.empty() ||
            opt.intervalStats > 0 || opt.profile ||
            !opt.chromeTraceFile.empty() || opt.leakmon) {
            throw UsageError(
                "--sweep-seeds is incompatible with --trace, "
                "--stats-json, --interval-stats, --profile, "
                "--chrome-trace, and --leakmon (single-run "
                "observability outputs)");
        }
        if (opt.checkers || opt.watchdogWindow > 0) {
            throw UsageError(
                "--sweep-seeds is incompatible with --checkers and "
                "--watchdog (single-run hardening; --inject worker "
                "faults still apply)");
        }
    }
    if (opt.shardProcs > 1) {
        if (opt.sweepSeeds == 0 && !opt.gaOffline) {
            throw UsageError("--shard-procs needs --sweep-seeds or "
                             "--ga-offline (the multi-run phases)");
        }
        if (!opt.injectSpec.empty()) {
            throw UsageError(
                "--shard-procs is incompatible with --inject "
                "(injector state does not cross process boundaries)");
        }
    }
    if (opt.checkersRecover && opt.mitigation == sim::Mitigation::None)
        throw UsageError("--checkers=recover without a shaping "
                         "mitigation has nothing to degrade");
    return opt;
}

std::unique_ptr<obs::TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "csv")
        return std::make_unique<obs::CsvTraceSink>(os);
    if (format == "bin")
        return std::make_unique<obs::BinaryTraceSink>(os);
    return std::make_unique<obs::JsonlTraceSink>(os);
}

int
runCamosim(const Options &opt)
{
    // Three configuration layers: paper defaults, then the --config
    // file (when given), then explicit flags (already folded into opt
    // by parseArgs).
    sim::SystemConfig cfg =
        opt.topo ? opt.topo->system : sim::paperConfig();
    cfg.numCores = static_cast<std::uint32_t>(opt.workloads.size());
    cfg.mitigation = opt.mitigation;
    cfg.seed = opt.seed;
    cfg.mc.org.channels = opt.channels;
    cfg.fakeTraffic = opt.fakeTraffic;
    cfg.randomizeTiming = opt.randomizeTiming;
    cfg.shapeCore = opt.shapeCores;
    cfg.fastForward = opt.fastForward;

    // Fault-injection campaign (spec parse errors are ConfigErrors).
    std::unique_ptr<hard::FaultInjector> injector;
    if (!opt.injectSpec.empty()) {
        const hard::FaultPlan plan = hard::FaultPlan::parse(
            opt.injectSpec,
            opt.injectSeed ? opt.injectSeed : opt.seed);
        injector = std::make_unique<hard::FaultInjector>(plan);
    }

    if (opt.runGa) {
        ga::GaConfig ga_cfg;
        ga_cfg.generations = opt.gaGenerations;
        ga_cfg.populationSize = opt.gaPopulation;
        if (!opt.csv)
            std::printf("# tuning bins %s (%zu gens x %zu "
                        "children)...\n",
                        opt.gaOffline ? "offline" : "online",
                        ga_cfg.generations, ga_cfg.populationSize);
        const auto tuned =
            opt.gaOffline
                ? sim::runOfflineGa(cfg, opt.workloads, ga_cfg, 20000,
                                    opt.jobs, opt.shardProcs)
                : sim::runOnlineGa(cfg, opt.workloads, ga_cfg);
        cfg.reqBinsPerCore = tuned.reqBinsPerCore;
        cfg.respBinsPerCore = tuned.respBinsPerCore;
        if (!opt.csv) {
            std::printf("# GA leak bound: %.1f bits over %llu config "
                        "cycles\n", tuned.configPhaseLeakBoundBits,
                        static_cast<unsigned long long>(
                            tuned.configPhaseCycles));
        }
    }

    if (opt.sweepSeeds > 0) {
        // Replica sweep: same configuration under K consecutive
        // seeds, fanned across the worker pool. Worker faults from
        // --inject hit individual jobs here (and are retried with
        // re-derived seeds); system-level faults need a single run.
        std::vector<sim::SimJob> batch;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            sim::SystemConfig c = cfg;
            c.seed = opt.seed + k;
            batch.push_back({c, opt.workloads, opt.cycles, opt.warmup});
        }
        const auto runs =
            opt.shardProcs > 1
                ? sim::runConfigsSharded(batch, opt.jobs,
                                         opt.shardProcs)
                : sim::runConfigsParallel(batch, opt.jobs,
                                          injector.get());
        if (injector && injector->totalFired() > 0 && !opt.csv)
            std::printf("# faults fired: %s\n",
                        injector->summary().c_str());
        if (opt.csv) {
            std::printf("seed,throughput\n");
            for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k)
                std::printf("%llu,%.4f\n",
                            static_cast<unsigned long long>(opt.seed + k),
                            runs[k].throughput());
            return kExitOk;
        }
        std::printf("%s", sim::tableIiBanner().c_str());
        std::printf("# mitigation: %s, %u seeds from %llu, %llu cycles "
                    "(+%llu warmup)\n\n",
                    sim::mitigationName(opt.mitigation), opt.sweepSeeds,
                    static_cast<unsigned long long>(opt.seed),
                    static_cast<unsigned long long>(opt.cycles),
                    static_cast<unsigned long long>(opt.warmup));
        std::printf("%8s %12s\n", "seed", "throughput");
        double total = 0.0;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            total += runs[k].throughput();
            std::printf("%8llu %12.3f\n",
                        static_cast<unsigned long long>(opt.seed + k),
                        runs[k].throughput());
        }
        std::printf("\nmean throughput: %.3f\n",
                    total / static_cast<double>(opt.sweepSeeds));
        return kExitOk;
    }

    sim::System system(cfg, opt.workloads);

    if (opt.checkers) {
        hard::CheckerConfig hc;
        hc.recoverShaper = opt.checkersRecover;
        system.enableCheckers(hc);
    }
    if (opt.watchdogWindow > 0) {
        hard::WatchdogConfig wc;
        wc.window = opt.watchdogWindow;
        system.enableWatchdog(wc);
    }
    if (injector)
        system.setFaultInjector(injector.get());
    if (!opt.diagDir.empty())
        system.setDiagnosticDir(opt.diagDir);

    std::ofstream trace_os;
    if (!opt.traceFile.empty()) {
        const std::string format =
            opt.traceFormat.empty() ? "jsonl" : opt.traceFormat;
        trace_os.open(opt.traceFile, format == "bin"
                                         ? std::ios::out | std::ios::binary
                                         : std::ios::out);
        if (!trace_os)
            camo_fatal("cannot open trace file: ", opt.traceFile);
        system.tracer().setSink(makeTraceSink(format, trace_os));
        system.tracer().setEnabled(true);
    }
    // The writer must outlive the run: the sink streams into it from
    // inside the loop, and the profile spans are appended after.
    std::ofstream chrome_os;
    std::unique_ptr<obs::ChromeTraceWriter> chrome_writer;
    if (!opt.chromeTraceFile.empty()) {
        chrome_os.open(opt.chromeTraceFile);
        if (!chrome_os)
            camo_fatal("cannot open chrome-trace file: ",
                       opt.chromeTraceFile);
        chrome_writer =
            std::make_unique<obs::ChromeTraceWriter>(chrome_os);
        system.tracer().setSink(std::make_unique<obs::ChromeTraceSink>(
            *chrome_writer, cfg.numCores));
        system.tracer().setEnabled(true);
    }
    if (opt.leakmon) {
        // Before enableIntervalStats, so the interval series grows a
        // leakmon.window_mi_bits column.
        obs::LeakMonitorConfig lc;
        lc.core = opt.leakmonCore;
        lc.alertThresholdBits = opt.leakmonThreshold;
        if (opt.leakmonWindow > 0) {
            lc.windowCycles = opt.leakmonWindow;
            lc.checkPeriod = std::max<Cycle>(1, opt.leakmonWindow / 5);
        }
        system.enableLeakMonitor(lc);
    }
    if (opt.intervalStats > 0)
        system.enableIntervalStats(opt.intervalStats);

    obs::Profiler prof;
    if (opt.profile)
        system.setProfiler(&prof);

    const obs::Profiler::Timer wall;
    const auto m = sim::runAndMeasure(system, opt.cycles, opt.warmup);
    const std::uint64_t wall_ns = wall.elapsedNs();

    // End-of-run lifecycle audit: a dropped response shows up here as
    // a leaked (never-retired) request even without the watchdog.
    if (opt.checkers)
        system.checkForLeaks();

    if (!opt.traceFile.empty() || chrome_writer)
        system.tracer().flush();
    if (chrome_writer) {
        if (opt.profile)
            obs::writeProfile(*chrome_writer, prof);
        chrome_writer->finish();
    }
    if (!opt.profileOut.empty()) {
        std::ofstream os(opt.profileOut);
        if (!os)
            camo_fatal("cannot open profile file: ", opt.profileOut);
        obs::json::Value root = obs::json::Value::makeObject();
        root["schema"] = "camo-profile-report-1";
        root["wall_ns"] = wall_ns;
        root["build"] = obs::buildInfoJson();
        root["profile"] = prof.toJson();
        os << root.dump(2) << "\n";
    }
    if (!opt.profileFolded.empty()) {
        std::ofstream os(opt.profileFolded);
        if (!os)
            camo_fatal("cannot open folded file: ", opt.profileFolded);
        os << prof.toFolded();
    }
    if (!opt.intervalCsvFile.empty()) {
        std::ofstream os(opt.intervalCsvFile);
        if (!os)
            camo_fatal("cannot open interval file: ",
                       opt.intervalCsvFile);
        os << system.intervalStats()->toCsv();
    }
    if (!opt.statsJsonFile.empty()) {
        std::ofstream os(opt.statsJsonFile);
        if (!os)
            camo_fatal("cannot open stats file: ", opt.statsJsonFile);
        os << sim::summaryJson(system, opt.workloads,
                               !opt.traceFile.empty())
                  .dump(2)
           << "\n";
    }

    if (injector && injector->totalFired() > 0 && !opt.csv)
        std::printf("# faults fired: %s\n",
                    injector->summary().c_str());

    if (opt.csv) {
        std::printf("core,workload,ipc,retired,served_reads,"
                    "avg_read_latency,alpha\n");
        for (std::size_t i = 0; i < m.ipc.size(); ++i) {
            std::printf("%zu,%s,%.4f,%llu,%llu,%.1f,%.3f\n", i,
                        opt.workloads[i].c_str(), m.ipc[i],
                        static_cast<unsigned long long>(m.retired[i]),
                        static_cast<unsigned long long>(
                            m.servedReads[i]),
                        m.avgReadLatency[i], m.alpha[i]);
        }
        return kExitOk;
    }

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# mitigation: %s, %llu cycles (+%llu warmup), "
                "seed %llu\n\n",
                sim::mitigationName(opt.mitigation),
                static_cast<unsigned long long>(opt.cycles),
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.seed));
    std::printf("%4s %-14s %8s %12s %10s %10s %7s\n", "core",
                "workload", "IPC", "retired", "reads", "avg lat",
                "alpha");
    for (std::size_t i = 0; i < m.ipc.size(); ++i) {
        std::printf("%4zu %-14s %8.3f %12llu %10llu %10.1f %7.3f\n", i,
                    opt.workloads[i].c_str(), m.ipc[i],
                    static_cast<unsigned long long>(m.retired[i]),
                    static_cast<unsigned long long>(m.servedReads[i]),
                    m.avgReadLatency[i], m.alpha[i]);
    }
    std::printf("\nthroughput (sum IPC): %.3f\n", m.throughput());

    if (opt.profile) {
        const double run_ms =
            static_cast<double>(prof.totalNs()) / 1e6;
        const double wall_ms = static_cast<double>(wall_ns) / 1e6;
        std::printf("\n# profile: run %.1f ms (%.1f%% of %.1f ms "
                    "wall)\n",
                    run_ms,
                    wall_ns ? 100.0 * static_cast<double>(
                                  prof.totalNs()) /
                                  static_cast<double>(wall_ns)
                            : 0.0,
                    wall_ms);
        for (const auto id : prof.node(prof.root()).children) {
            const auto &n = prof.node(id);
            std::printf("#   %-12s total %9.2f ms  self %9.2f ms  "
                        "calls %llu\n",
                        n.name.c_str(),
                        static_cast<double>(n.ns) / 1e6,
                        static_cast<double>(prof.selfNs(id)) / 1e6,
                        static_cast<unsigned long long>(n.calls));
        }
    }
    if (obs::LeakMonitor *mon = system.leakMonitor()) {
        const security::ShapingMiResult res = mon->cumulativeResult();
        std::printf("\n# leakmon: cumulative MI %.4f bits over %llu "
                    "pairs; window last %.4f / peak %.4f bits (%zu "
                    "windows)\n",
                    res.miBits,
                    static_cast<unsigned long long>(res.pairs),
                    mon->lastWindowMiBits(), mon->peakWindowMiBits(),
                    mon->history().size());
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        opt = parseArgs(argc, argv);
    } catch (const UsageError &e) {
        std::fprintf(stderr, "camosim: %s\n", e.what());
        printUsage(stderr, argv[0]);
        return kExitUsage;
    } catch (const hard::ConfigError &e) {
        // A malformed --config file is a configuration problem, not a
        // command-line one: no usage dump, exit 3.
        std::fprintf(stderr, "camosim: invalid configuration: %s\n",
                     e.what());
        return kExitConfig;
    }
    if (opt.help) {
        printUsage(stdout, argv[0]);
        return kExitOk;
    }
    if (opt.version) {
        std::printf("%s\n", buildVersionLine().c_str());
        return kExitOk;
    }
    if (opt.listScenarios) {
        std::printf("%s", scenario::listScenariosText().c_str());
        return kExitOk;
    }

    try {
        return runCamosim(opt);
    } catch (const hard::ConfigError &e) {
        std::fprintf(stderr, "camosim: invalid configuration: %s\n",
                     e.what());
        return kExitConfig;
    } catch (const hard::InvariantViolation &e) {
        std::fprintf(stderr, "camosim: invariant violation: %s\n",
                     e.what());
        if (!e.dumpPath().empty())
            std::fprintf(stderr, "camosim: diagnostic dump: %s\n",
                         e.dumpPath().c_str());
        return kExitInvariant;
    } catch (const hard::WatchdogTimeout &e) {
        std::fprintf(stderr, "camosim: watchdog: %s\n", e.what());
        if (!e.dumpPath().empty())
            std::fprintf(stderr, "camosim: diagnostic dump: %s\n",
                         e.dumpPath().c_str());
        return kExitWatchdog;
    } catch (const hard::LeakageAlert &e) {
        std::fprintf(stderr, "camosim: leakage alert: %s\n", e.what());
        if (!e.dumpPath().empty())
            std::fprintf(stderr, "camosim: diagnostic dump: %s\n",
                         e.dumpPath().c_str());
        return kExitLeakage;
    } catch (const hard::CamoError &e) {
        std::fprintf(stderr, "camosim: %s error: %s\n",
                     hard::errorKindName(e.kind()), e.what());
        return kExitRuntime;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "camosim: %s\n", e.what());
        return kExitRuntime;
    }
}
