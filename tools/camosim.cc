/**
 * @file
 * camosim — command-line driver for the Camouflage simulator.
 *
 * Runs a workload mix on the paper's Table II machine under a chosen
 * mitigation and prints per-core results (optionally as CSV), with
 * knobs for the interesting configuration surface. Examples:
 *
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc
 *   camosim --workloads=probe,apache,apache,apache --mitigation=respc \
 *           --shape-cores=0 --cycles=2000000 --csv
 *   camosim --workloads=bzip,astar,astar,astar --mitigation=bdc --ga
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --trace=t.jsonl --stats-json=s.json --interval-stats=10000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

struct Options
{
    std::vector<std::string> workloads;
    sim::Mitigation mitigation = sim::Mitigation::None;
    Cycle cycles = 1000000;
    Cycle warmup = 50000;
    std::uint64_t seed = 1;
    std::uint32_t channels = 1;
    bool fakeTraffic = true;
    bool randomizeTiming = false;
    bool csv = false;
    bool runGa = false;
    bool gaOffline = false;
    std::size_t gaGenerations = 8;
    std::size_t gaPopulation = 14;
    std::vector<bool> shapeCores; // empty = all
    unsigned jobs = 0;            // 0 = defaultJobs()
    std::uint32_t sweepSeeds = 0; // 0 = single run
    bool fastForward = true;

    // Observability outputs.
    std::string traceFile;
    std::string traceFormat = "jsonl";
    std::string statsJsonFile;
    Cycle intervalStats = 0;
    std::string intervalCsvFile;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --workloads=w0,w1,...   one per core (default mcf,astar x3)\n"
        "  --mitigation=M          none|cs|reqc|respc|bdc|tp|fs\n"
        "  --cycles=N --warmup=N   measurement window (CPU cycles)\n"
        "  --seed=N                deterministic RNG seed\n"
        "  --channels=N            DRAM channels (default 1)\n"
        "  --no-fakes              disable fake traffic generation\n"
        "  --randomize-timing      SIV-B4 random slack\n"
        "  --shape-cores=i,j,...   shape only the listed cores\n"
        "  --ga [--ga-gens=N --ga-pop=N]  tune bins online first\n"
        "  --ga-offline            tune offline instead: fresh system\n"
        "                          per child, evaluated across --jobs\n"
        "  --jobs=N                worker threads for parallel phases\n"
        "                          (default: CAMO_JOBS env or core count)\n"
        "  --sweep-seeds=K         run seeds seed..seed+K-1 in parallel\n"
        "                          and print one row per seed\n"
        "  --no-fast-forward       force the per-cycle loop (debugging;\n"
        "                          results are identical either way)\n"
        "  --csv                   machine-readable output\n"
        "  --trace=FILE            cycle-stamped event trace\n"
        "  --trace-format=F        jsonl (default) | csv | bin\n"
        "  --stats-json=FILE       hierarchical stats tree as JSON\n"
        "  --interval-stats=N      snapshot metrics every N cycles\n"
        "  --interval-csv=FILE     write the interval series as CSV\n"
        "workloads: ",
        argv0);
    for (const auto &n : trace::workloadNames())
        std::fprintf(stderr, "%s ", n.c_str());
    std::fprintf(stderr, "probe covert:HEX\n");
    std::exit(2);
}

sim::Mitigation
parseMitigation(const std::string &s)
{
    if (s == "none") return sim::Mitigation::None;
    if (s == "cs") return sim::Mitigation::CS;
    if (s == "reqc") return sim::Mitigation::ReqC;
    if (s == "respc") return sim::Mitigation::RespC;
    if (s == "bdc") return sim::Mitigation::BDC;
    if (s == "tp") return sim::Mitigation::TP;
    if (s == "fs") return sim::Mitigation::FS;
    camo_fatal("unknown mitigation: ", s);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.workloads = {"mcf", "astar", "astar", "astar"};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0 && arg.size() > n &&
                arg[n] == '=') {
                return arg.c_str() + n + 1;
            }
            return nullptr;
        };
        if (const char *v = value("--workloads")) {
            opt.workloads = splitCommas(v);
        } else if (const char *v = value("--mitigation")) {
            opt.mitigation = parseMitigation(v);
        } else if (const char *v = value("--cycles")) {
            opt.cycles = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--warmup")) {
            opt.warmup = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--seed")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--channels")) {
            opt.channels = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--no-fakes") {
            opt.fakeTraffic = false;
        } else if (arg == "--randomize-timing") {
            opt.randomizeTiming = true;
        } else if (const char *v = value("--shape-cores")) {
            opt.shapeCores.assign(opt.workloads.size(), false);
            for (const auto &idx : splitCommas(v)) {
                const auto c = std::strtoul(idx.c_str(), nullptr, 10);
                if (c >= opt.shapeCores.size())
                    camo_fatal("--shape-cores index out of range: ", c);
                opt.shapeCores[c] = true;
            }
        } else if (arg == "--ga") {
            opt.runGa = true;
        } else if (arg == "--ga-offline") {
            opt.runGa = true;
            opt.gaOffline = true;
        } else if (const char *v = value("--jobs")) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (const char *v = value("--sweep-seeds")) {
            opt.sweepSeeds = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--no-fast-forward") {
            opt.fastForward = false;
        } else if (const char *v = value("--ga-gens")) {
            opt.gaGenerations = std::strtoul(v, nullptr, 10);
        } else if (const char *v = value("--ga-pop")) {
            opt.gaPopulation = std::strtoul(v, nullptr, 10);
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (const char *v = value("--trace")) {
            opt.traceFile = v;
        } else if (const char *v = value("--trace-format")) {
            opt.traceFormat = v;
        } else if (const char *v = value("--stats-json")) {
            opt.statsJsonFile = v;
        } else if (const char *v = value("--interval-stats")) {
            opt.intervalStats = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--interval-csv")) {
            opt.intervalCsvFile = v;
        } else {
            usage(argv[0]);
        }
    }
    for (const auto &w : opt.workloads) {
        if (!trace::isKnownWorkload(w))
            camo_fatal("unknown workload: ", w);
    }
    if (opt.traceFormat != "jsonl" && opt.traceFormat != "csv" &&
        opt.traceFormat != "bin") {
        camo_fatal("unknown trace format: ", opt.traceFormat,
                   " (expected jsonl, csv, or bin)");
    }
    if (!opt.intervalCsvFile.empty() && opt.intervalStats == 0)
        camo_fatal("--interval-csv needs --interval-stats=N");
    return opt;
}

std::unique_ptr<obs::TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "csv")
        return std::make_unique<obs::CsvTraceSink>(os);
    if (format == "bin")
        return std::make_unique<obs::BinaryTraceSink>(os);
    return std::make_unique<obs::JsonlTraceSink>(os);
}

/** Stats-tree JSON: run metadata + the registry tree (+ tracer and
 *  interval summaries when those features are on). */
void
writeStatsJson(const Options &opt, sim::System &system)
{
    obs::StatRegistry reg;
    system.registerStats(reg);

    obs::json::Value root = obs::json::Value::makeObject();
    root["mitigation"] =
        obs::json::Value(sim::mitigationName(opt.mitigation));
    root["cycles"] = obs::json::Value(system.now());
    root["seed"] = obs::json::Value(opt.seed);
    obs::json::Value wl = obs::json::Value::makeArray();
    for (const auto &w : opt.workloads)
        wl.push(obs::json::Value(w));
    root["workloads"] = std::move(wl);
    root["stats"] = reg.toJson();
    if (!opt.traceFile.empty()) {
        obs::json::Value t = obs::json::Value::makeObject();
        t["emitted"] = obs::json::Value(system.tracer().emitted());
        t["dropped"] = obs::json::Value(system.tracer().dropped());
        root["tracer"] = std::move(t);
    }
    if (const obs::IntervalCollector *iv = system.intervalStats())
        root["intervals"] = iv->toJson();

    std::ofstream os(opt.statsJsonFile);
    if (!os)
        camo_fatal("cannot open stats file: ", opt.statsJsonFile);
    os << root.dump(2) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = static_cast<std::uint32_t>(opt.workloads.size());
    cfg.mitigation = opt.mitigation;
    cfg.seed = opt.seed;
    cfg.mc.org.channels = opt.channels;
    cfg.fakeTraffic = opt.fakeTraffic;
    cfg.randomizeTiming = opt.randomizeTiming;
    cfg.shapeCore = opt.shapeCores;
    cfg.fastForward = opt.fastForward;

    if (opt.runGa) {
        if (opt.mitigation != sim::Mitigation::BDC &&
            opt.mitigation != sim::Mitigation::ReqC &&
            opt.mitigation != sim::Mitigation::RespC) {
            camo_fatal("--ga needs a Camouflage mitigation");
        }
        ga::GaConfig ga_cfg;
        ga_cfg.generations = opt.gaGenerations;
        ga_cfg.populationSize = opt.gaPopulation;
        if (!opt.csv)
            std::printf("# tuning bins %s (%zu gens x %zu "
                        "children)...\n",
                        opt.gaOffline ? "offline" : "online",
                        ga_cfg.generations, ga_cfg.populationSize);
        const auto tuned =
            opt.gaOffline
                ? sim::runOfflineGa(cfg, opt.workloads, ga_cfg, 20000,
                                    opt.jobs)
                : sim::runOnlineGa(cfg, opt.workloads, ga_cfg);
        cfg.reqBinsPerCore = tuned.reqBinsPerCore;
        cfg.respBinsPerCore = tuned.respBinsPerCore;
        if (!opt.csv) {
            std::printf("# GA leak bound: %.1f bits over %llu config "
                        "cycles\n", tuned.configPhaseLeakBoundBits,
                        static_cast<unsigned long long>(
                            tuned.configPhaseCycles));
        }
    }

    if (opt.sweepSeeds > 0) {
        // Replica sweep: same configuration under K consecutive
        // seeds, fanned across the worker pool. Observability
        // outputs are single-run features and are ignored here.
        std::vector<sim::SimJob> batch;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            sim::SystemConfig c = cfg;
            c.seed = opt.seed + k;
            batch.push_back({c, opt.workloads, opt.cycles, opt.warmup});
        }
        const auto runs = sim::runConfigsParallel(batch, opt.jobs);
        if (opt.csv) {
            std::printf("seed,throughput\n");
            for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k)
                std::printf("%llu,%.4f\n",
                            static_cast<unsigned long long>(opt.seed + k),
                            runs[k].throughput());
            return 0;
        }
        std::printf("%s", sim::tableIiBanner().c_str());
        std::printf("# mitigation: %s, %u seeds from %llu, %llu cycles "
                    "(+%llu warmup)\n\n",
                    sim::mitigationName(opt.mitigation), opt.sweepSeeds,
                    static_cast<unsigned long long>(opt.seed),
                    static_cast<unsigned long long>(opt.cycles),
                    static_cast<unsigned long long>(opt.warmup));
        std::printf("%8s %12s\n", "seed", "throughput");
        double total = 0.0;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            total += runs[k].throughput();
            std::printf("%8llu %12.3f\n",
                        static_cast<unsigned long long>(opt.seed + k),
                        runs[k].throughput());
        }
        std::printf("\nmean throughput: %.3f\n",
                    total / static_cast<double>(opt.sweepSeeds));
        return 0;
    }

    sim::System system(cfg, opt.workloads);

    std::ofstream trace_os;
    if (!opt.traceFile.empty()) {
        trace_os.open(opt.traceFile, opt.traceFormat == "bin"
                                         ? std::ios::out | std::ios::binary
                                         : std::ios::out);
        if (!trace_os)
            camo_fatal("cannot open trace file: ", opt.traceFile);
        system.tracer().setSink(
            makeTraceSink(opt.traceFormat, trace_os));
        system.tracer().setEnabled(true);
    }
    if (opt.intervalStats > 0)
        system.enableIntervalStats(opt.intervalStats);

    const auto m = sim::runAndMeasure(system, opt.cycles, opt.warmup);

    if (!opt.traceFile.empty())
        system.tracer().flush();
    if (!opt.intervalCsvFile.empty()) {
        std::ofstream os(opt.intervalCsvFile);
        if (!os)
            camo_fatal("cannot open interval file: ",
                       opt.intervalCsvFile);
        os << system.intervalStats()->toCsv();
    }
    if (!opt.statsJsonFile.empty())
        writeStatsJson(opt, system);

    if (opt.csv) {
        std::printf("core,workload,ipc,retired,served_reads,"
                    "avg_read_latency,alpha\n");
        for (std::size_t i = 0; i < m.ipc.size(); ++i) {
            std::printf("%zu,%s,%.4f,%llu,%llu,%.1f,%.3f\n", i,
                        opt.workloads[i].c_str(), m.ipc[i],
                        static_cast<unsigned long long>(m.retired[i]),
                        static_cast<unsigned long long>(
                            m.servedReads[i]),
                        m.avgReadLatency[i], m.alpha[i]);
        }
        return 0;
    }

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# mitigation: %s, %llu cycles (+%llu warmup), "
                "seed %llu\n\n",
                sim::mitigationName(opt.mitigation),
                static_cast<unsigned long long>(opt.cycles),
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.seed));
    std::printf("%4s %-14s %8s %12s %10s %10s %7s\n", "core",
                "workload", "IPC", "retired", "reads", "avg lat",
                "alpha");
    for (std::size_t i = 0; i < m.ipc.size(); ++i) {
        std::printf("%4zu %-14s %8.3f %12llu %10llu %10.1f %7.3f\n", i,
                    opt.workloads[i].c_str(), m.ipc[i],
                    static_cast<unsigned long long>(m.retired[i]),
                    static_cast<unsigned long long>(m.servedReads[i]),
                    m.avgReadLatency[i], m.alpha[i]);
    }
    std::printf("\nthroughput (sum IPC): %.3f\n", m.throughput());
    return 0;
}
