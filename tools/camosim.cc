/**
 * @file
 * camosim — command-line driver for the Camouflage simulator.
 *
 * Runs a workload mix on the paper's Table II machine under a chosen
 * mitigation and prints per-core results (optionally as CSV), with
 * knobs for the interesting configuration surface. Examples:
 *
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc
 *   camosim --workloads=probe,apache,apache,apache --mitigation=respc \
 *           --shape-cores=0 --cycles=2000000 --csv
 *   camosim --workloads=bzip,astar,astar,astar --mitigation=bdc --ga
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --trace=t.jsonl --stats-json=s.json --interval-stats=10000
 *   camosim --workloads=mcf,astar,astar,astar --mitigation=bdc \
 *           --checkers --watchdog=200000 \
 *           --inject=corrupt-credits:at=80000:core=0
 *
 * Exit codes: 0 success, 1 runtime error, 2 usage error, 3 invalid
 * configuration, 4 invariant violation, 5 watchdog timeout.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/hard/error.h"
#include "src/hard/fault_injection.h"
#include "src/obs/registry.h"
#include "src/obs/tracer.h"
#include "src/sim/parallel.h"
#include "src/sim/presets.h"
#include "src/sim/runner.h"
#include "src/trace/workloads.h"

using namespace camo;

namespace {

/** Exit codes (keep in sync with the file header and README). */
enum ExitCode
{
    kExitOk = 0,
    kExitRuntime = 1,
    kExitUsage = 2,
    kExitConfig = 3,
    kExitInvariant = 4,
    kExitWatchdog = 5,
};

/** A command-line problem: reported with usage help, exit code 2. */
struct UsageError : std::runtime_error
{
    explicit UsageError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

struct Options
{
    std::vector<std::string> workloads;
    sim::Mitigation mitigation = sim::Mitigation::None;
    Cycle cycles = 1000000;
    Cycle warmup = 50000;
    std::uint64_t seed = 1;
    std::uint32_t channels = 1;
    bool fakeTraffic = true;
    bool randomizeTiming = false;
    bool csv = false;
    bool runGa = false;
    bool gaOffline = false;
    std::size_t gaGenerations = 8;
    std::size_t gaPopulation = 14;
    std::vector<bool> shapeCores; // empty = all
    unsigned jobs = 0;            // 0 = defaultJobs()
    std::uint32_t sweepSeeds = 0; // 0 = single run
    bool fastForward = true;
    bool help = false;

    // Observability outputs.
    std::string traceFile;
    std::string traceFormat; // empty = unset (default jsonl)
    std::string statsJsonFile;
    Cycle intervalStats = 0;
    std::string intervalCsvFile;

    // Hardening layer.
    bool checkers = false;
    bool checkersRecover = false;
    Cycle watchdogWindow = 0; // 0 = off
    std::string injectSpec;
    std::uint64_t injectSeed = 0; // 0 = use --seed
};

void
printUsage(std::FILE *out, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --workloads=w0,w1,...   one per core (default mcf,astar x3)\n"
        "  --mitigation=M          none|cs|reqc|respc|bdc|tp|fs\n"
        "  --cycles=N --warmup=N   measurement window (CPU cycles)\n"
        "  --seed=N                deterministic RNG seed\n"
        "  --channels=N            DRAM channels (default 1)\n"
        "  --no-fakes              disable fake traffic generation\n"
        "  --randomize-timing      SIV-B4 random slack\n"
        "  --shape-cores=i,j,...   shape only the listed cores\n"
        "  --ga [--ga-gens=N --ga-pop=N]  tune bins online first\n"
        "  --ga-offline            tune offline instead: fresh system\n"
        "                          per child, evaluated across --jobs\n"
        "  --jobs=N                worker threads for parallel phases\n"
        "                          (default: CAMO_JOBS env or core count)\n"
        "  --sweep-seeds=K         run seeds seed..seed+K-1 in parallel\n"
        "                          and print one row per seed\n"
        "  --no-fast-forward       force the per-cycle loop (debugging;\n"
        "                          results are identical either way)\n"
        "  --csv                   machine-readable output\n"
        "  --trace=FILE            cycle-stamped event trace\n"
        "  --trace-format=F        jsonl (default) | csv | bin\n"
        "  --stats-json=FILE       hierarchical stats tree as JSON\n"
        "  --interval-stats=N      snapshot metrics every N cycles\n"
        "  --interval-csv=FILE     write the interval series as CSV\n"
        "  --checkers[=recover]    runtime invariant checkers; =recover\n"
        "                          degrades a violating shaper to the\n"
        "                          fail-secure schedule instead of\n"
        "                          stopping (exit 4 on violation)\n"
        "  --watchdog=N            fail if a core with pending work\n"
        "                          makes no progress for N cycles\n"
        "                          (exit 5, diagnostic dump on stderr)\n"
        "  --inject=SPEC           fault-injection campaign, e.g.\n"
        "                          drop-resp:rate=0.001,wedge-req:at=9000\n"
        "  --inject-seed=N         injection RNG seed (default --seed)\n"
        "workloads: ",
        argv0);
    for (const auto &n : trace::workloadNames())
        std::fprintf(out, "%s ", n.c_str());
    std::fprintf(out, "probe covert:HEX\n");
}

sim::Mitigation
parseMitigation(const std::string &s)
{
    if (s == "none") return sim::Mitigation::None;
    if (s == "cs") return sim::Mitigation::CS;
    if (s == "reqc") return sim::Mitigation::ReqC;
    if (s == "respc") return sim::Mitigation::RespC;
    if (s == "bdc") return sim::Mitigation::BDC;
    if (s == "tp") return sim::Mitigation::TP;
    if (s == "fs") return sim::Mitigation::FS;
    throw UsageError("unknown mitigation '" + s +
                     "' (expected none, cs, reqc, respc, bdc, tp, "
                     "or fs)");
}

/** Strict full-string unsigned parse; rejects "12x", "", "-3". */
std::uint64_t
parseU64Flag(const char *flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        value[0] == '-') {
        throw UsageError(std::string(flag) + "=" + value +
                         " is not an unsigned integer");
    }
    return v;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * Parse the command line. Throws UsageError (never exits) on unknown
 * flags, malformed values, or invalid flag combinations, each with a
 * one-line reason.
 */
Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.workloads = {"mcf", "astar", "astar", "astar"};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0 && arg.size() > n &&
                arg[n] == '=') {
                return arg.c_str() + n + 1;
            }
            return nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            opt.help = true;
            return opt;
        } else if (const char *v = value("--workloads")) {
            opt.workloads = splitCommas(v);
        } else if (const char *v = value("--mitigation")) {
            opt.mitigation = parseMitigation(v);
        } else if (const char *v = value("--cycles")) {
            opt.cycles = parseU64Flag("--cycles", v);
        } else if (const char *v = value("--warmup")) {
            opt.warmup = parseU64Flag("--warmup", v);
        } else if (const char *v = value("--seed")) {
            opt.seed = parseU64Flag("--seed", v);
        } else if (const char *v = value("--channels")) {
            opt.channels = static_cast<std::uint32_t>(
                parseU64Flag("--channels", v));
        } else if (arg == "--no-fakes") {
            opt.fakeTraffic = false;
        } else if (arg == "--randomize-timing") {
            opt.randomizeTiming = true;
        } else if (const char *v = value("--shape-cores")) {
            opt.shapeCores.assign(opt.workloads.size(), false);
            for (const auto &idx : splitCommas(v)) {
                const auto c = parseU64Flag("--shape-cores", idx);
                if (c >= opt.shapeCores.size()) {
                    throw UsageError(
                        "--shape-cores index " + idx +
                        " is out of range (have " +
                        std::to_string(opt.shapeCores.size()) +
                        " cores)");
                }
                opt.shapeCores[static_cast<std::size_t>(c)] = true;
            }
        } else if (arg == "--ga") {
            opt.runGa = true;
        } else if (arg == "--ga-offline") {
            opt.runGa = true;
            opt.gaOffline = true;
        } else if (const char *v = value("--jobs")) {
            opt.jobs =
                static_cast<unsigned>(parseU64Flag("--jobs", v));
        } else if (const char *v = value("--sweep-seeds")) {
            opt.sweepSeeds = static_cast<std::uint32_t>(
                parseU64Flag("--sweep-seeds", v));
        } else if (arg == "--no-fast-forward") {
            opt.fastForward = false;
        } else if (const char *v = value("--ga-gens")) {
            opt.gaGenerations = static_cast<std::size_t>(
                parseU64Flag("--ga-gens", v));
        } else if (const char *v = value("--ga-pop")) {
            opt.gaPopulation = static_cast<std::size_t>(
                parseU64Flag("--ga-pop", v));
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (const char *v = value("--trace")) {
            opt.traceFile = v;
        } else if (const char *v = value("--trace-format")) {
            opt.traceFormat = v;
        } else if (const char *v = value("--stats-json")) {
            opt.statsJsonFile = v;
        } else if (const char *v = value("--interval-stats")) {
            opt.intervalStats = parseU64Flag("--interval-stats", v);
        } else if (const char *v = value("--interval-csv")) {
            opt.intervalCsvFile = v;
        } else if (arg == "--checkers") {
            opt.checkers = true;
        } else if (const char *v = value("--checkers")) {
            if (std::string(v) != "recover") {
                throw UsageError(
                    "--checkers accepts only '=recover', got '" +
                    std::string(v) + "'");
            }
            opt.checkers = true;
            opt.checkersRecover = true;
        } else if (const char *v = value("--watchdog")) {
            opt.watchdogWindow = parseU64Flag("--watchdog", v);
            if (opt.watchdogWindow == 0)
                throw UsageError("--watchdog window must be > 0");
        } else if (const char *v = value("--inject")) {
            opt.injectSpec = v;
        } else if (const char *v = value("--inject-seed")) {
            opt.injectSeed = parseU64Flag("--inject-seed", v);
        } else {
            throw UsageError("unknown option '" + arg + "'");
        }
    }

    for (const auto &w : opt.workloads) {
        if (!trace::isKnownWorkload(w))
            throw UsageError("unknown workload '" + w + "'");
    }
    if (!opt.traceFormat.empty() && opt.traceFile.empty()) {
        throw UsageError(
            "--trace-format without --trace=FILE has no effect");
    }
    if (!opt.traceFormat.empty() && opt.traceFormat != "jsonl" &&
        opt.traceFormat != "csv" && opt.traceFormat != "bin") {
        throw UsageError("unknown trace format '" + opt.traceFormat +
                         "' (expected jsonl, csv, or bin)");
    }
    if (!opt.intervalCsvFile.empty() && opt.intervalStats == 0)
        throw UsageError("--interval-csv needs --interval-stats=N");
    if (opt.runGa && opt.mitigation != sim::Mitigation::BDC &&
        opt.mitigation != sim::Mitigation::ReqC &&
        opt.mitigation != sim::Mitigation::RespC) {
        throw UsageError(
            "--ga needs a Camouflage mitigation (reqc, respc, or "
            "bdc)");
    }
    if (opt.sweepSeeds > 0) {
        if (!opt.traceFile.empty() || !opt.statsJsonFile.empty() ||
            opt.intervalStats > 0) {
            throw UsageError(
                "--sweep-seeds is incompatible with --trace, "
                "--stats-json, and --interval-stats (single-run "
                "observability outputs)");
        }
        if (opt.checkers || opt.watchdogWindow > 0) {
            throw UsageError(
                "--sweep-seeds is incompatible with --checkers and "
                "--watchdog (single-run hardening; --inject worker "
                "faults still apply)");
        }
    }
    if (opt.checkersRecover && opt.mitigation == sim::Mitigation::None)
        throw UsageError("--checkers=recover without a shaping "
                         "mitigation has nothing to degrade");
    return opt;
}

std::unique_ptr<obs::TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "csv")
        return std::make_unique<obs::CsvTraceSink>(os);
    if (format == "bin")
        return std::make_unique<obs::BinaryTraceSink>(os);
    return std::make_unique<obs::JsonlTraceSink>(os);
}

/** Stats-tree JSON: run metadata + the registry tree (+ tracer and
 *  interval summaries when those features are on). */
void
writeStatsJson(const Options &opt, sim::System &system)
{
    obs::StatRegistry reg;
    system.registerStats(reg);

    obs::json::Value root = obs::json::Value::makeObject();
    root["mitigation"] =
        obs::json::Value(sim::mitigationName(opt.mitigation));
    root["cycles"] = obs::json::Value(system.now());
    root["seed"] = obs::json::Value(opt.seed);
    obs::json::Value wl = obs::json::Value::makeArray();
    for (const auto &w : opt.workloads)
        wl.push(obs::json::Value(w));
    root["workloads"] = std::move(wl);
    root["stats"] = reg.toJson();
    if (!opt.traceFile.empty()) {
        obs::json::Value t = obs::json::Value::makeObject();
        t["emitted"] = obs::json::Value(system.tracer().emitted());
        t["dropped"] = obs::json::Value(system.tracer().dropped());
        root["tracer"] = std::move(t);
    }
    if (const obs::IntervalCollector *iv = system.intervalStats())
        root["intervals"] = iv->toJson();

    std::ofstream os(opt.statsJsonFile);
    if (!os)
        camo_fatal("cannot open stats file: ", opt.statsJsonFile);
    os << root.dump(2) << "\n";
}

int
runCamosim(const Options &opt)
{
    sim::SystemConfig cfg = sim::paperConfig();
    cfg.numCores = static_cast<std::uint32_t>(opt.workloads.size());
    cfg.mitigation = opt.mitigation;
    cfg.seed = opt.seed;
    cfg.mc.org.channels = opt.channels;
    cfg.fakeTraffic = opt.fakeTraffic;
    cfg.randomizeTiming = opt.randomizeTiming;
    cfg.shapeCore = opt.shapeCores;
    cfg.fastForward = opt.fastForward;

    // Fault-injection campaign (spec parse errors are ConfigErrors).
    std::unique_ptr<hard::FaultInjector> injector;
    if (!opt.injectSpec.empty()) {
        const hard::FaultPlan plan = hard::FaultPlan::parse(
            opt.injectSpec,
            opt.injectSeed ? opt.injectSeed : opt.seed);
        injector = std::make_unique<hard::FaultInjector>(plan);
    }

    if (opt.runGa) {
        ga::GaConfig ga_cfg;
        ga_cfg.generations = opt.gaGenerations;
        ga_cfg.populationSize = opt.gaPopulation;
        if (!opt.csv)
            std::printf("# tuning bins %s (%zu gens x %zu "
                        "children)...\n",
                        opt.gaOffline ? "offline" : "online",
                        ga_cfg.generations, ga_cfg.populationSize);
        const auto tuned =
            opt.gaOffline
                ? sim::runOfflineGa(cfg, opt.workloads, ga_cfg, 20000,
                                    opt.jobs)
                : sim::runOnlineGa(cfg, opt.workloads, ga_cfg);
        cfg.reqBinsPerCore = tuned.reqBinsPerCore;
        cfg.respBinsPerCore = tuned.respBinsPerCore;
        if (!opt.csv) {
            std::printf("# GA leak bound: %.1f bits over %llu config "
                        "cycles\n", tuned.configPhaseLeakBoundBits,
                        static_cast<unsigned long long>(
                            tuned.configPhaseCycles));
        }
    }

    if (opt.sweepSeeds > 0) {
        // Replica sweep: same configuration under K consecutive
        // seeds, fanned across the worker pool. Worker faults from
        // --inject hit individual jobs here (and are retried with
        // re-derived seeds); system-level faults need a single run.
        std::vector<sim::SimJob> batch;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            sim::SystemConfig c = cfg;
            c.seed = opt.seed + k;
            batch.push_back({c, opt.workloads, opt.cycles, opt.warmup});
        }
        const auto runs =
            sim::runConfigsParallel(batch, opt.jobs, injector.get());
        if (injector && injector->totalFired() > 0 && !opt.csv)
            std::printf("# faults fired: %s\n",
                        injector->summary().c_str());
        if (opt.csv) {
            std::printf("seed,throughput\n");
            for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k)
                std::printf("%llu,%.4f\n",
                            static_cast<unsigned long long>(opt.seed + k),
                            runs[k].throughput());
            return kExitOk;
        }
        std::printf("%s", sim::tableIiBanner().c_str());
        std::printf("# mitigation: %s, %u seeds from %llu, %llu cycles "
                    "(+%llu warmup)\n\n",
                    sim::mitigationName(opt.mitigation), opt.sweepSeeds,
                    static_cast<unsigned long long>(opt.seed),
                    static_cast<unsigned long long>(opt.cycles),
                    static_cast<unsigned long long>(opt.warmup));
        std::printf("%8s %12s\n", "seed", "throughput");
        double total = 0.0;
        for (std::uint32_t k = 0; k < opt.sweepSeeds; ++k) {
            total += runs[k].throughput();
            std::printf("%8llu %12.3f\n",
                        static_cast<unsigned long long>(opt.seed + k),
                        runs[k].throughput());
        }
        std::printf("\nmean throughput: %.3f\n",
                    total / static_cast<double>(opt.sweepSeeds));
        return kExitOk;
    }

    sim::System system(cfg, opt.workloads);

    if (opt.checkers) {
        hard::CheckerConfig hc;
        hc.recoverShaper = opt.checkersRecover;
        system.enableCheckers(hc);
    }
    if (opt.watchdogWindow > 0) {
        hard::WatchdogConfig wc;
        wc.window = opt.watchdogWindow;
        system.enableWatchdog(wc);
    }
    if (injector)
        system.setFaultInjector(injector.get());

    std::ofstream trace_os;
    if (!opt.traceFile.empty()) {
        const std::string format =
            opt.traceFormat.empty() ? "jsonl" : opt.traceFormat;
        trace_os.open(opt.traceFile, format == "bin"
                                         ? std::ios::out | std::ios::binary
                                         : std::ios::out);
        if (!trace_os)
            camo_fatal("cannot open trace file: ", opt.traceFile);
        system.tracer().setSink(makeTraceSink(format, trace_os));
        system.tracer().setEnabled(true);
    }
    if (opt.intervalStats > 0)
        system.enableIntervalStats(opt.intervalStats);

    const auto m = sim::runAndMeasure(system, opt.cycles, opt.warmup);

    // End-of-run lifecycle audit: a dropped response shows up here as
    // a leaked (never-retired) request even without the watchdog.
    if (opt.checkers)
        system.checkForLeaks();

    if (!opt.traceFile.empty())
        system.tracer().flush();
    if (!opt.intervalCsvFile.empty()) {
        std::ofstream os(opt.intervalCsvFile);
        if (!os)
            camo_fatal("cannot open interval file: ",
                       opt.intervalCsvFile);
        os << system.intervalStats()->toCsv();
    }
    if (!opt.statsJsonFile.empty())
        writeStatsJson(opt, system);

    if (injector && injector->totalFired() > 0 && !opt.csv)
        std::printf("# faults fired: %s\n",
                    injector->summary().c_str());

    if (opt.csv) {
        std::printf("core,workload,ipc,retired,served_reads,"
                    "avg_read_latency,alpha\n");
        for (std::size_t i = 0; i < m.ipc.size(); ++i) {
            std::printf("%zu,%s,%.4f,%llu,%llu,%.1f,%.3f\n", i,
                        opt.workloads[i].c_str(), m.ipc[i],
                        static_cast<unsigned long long>(m.retired[i]),
                        static_cast<unsigned long long>(
                            m.servedReads[i]),
                        m.avgReadLatency[i], m.alpha[i]);
        }
        return kExitOk;
    }

    std::printf("%s", sim::tableIiBanner().c_str());
    std::printf("# mitigation: %s, %llu cycles (+%llu warmup), "
                "seed %llu\n\n",
                sim::mitigationName(opt.mitigation),
                static_cast<unsigned long long>(opt.cycles),
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.seed));
    std::printf("%4s %-14s %8s %12s %10s %10s %7s\n", "core",
                "workload", "IPC", "retired", "reads", "avg lat",
                "alpha");
    for (std::size_t i = 0; i < m.ipc.size(); ++i) {
        std::printf("%4zu %-14s %8.3f %12llu %10llu %10.1f %7.3f\n", i,
                    opt.workloads[i].c_str(), m.ipc[i],
                    static_cast<unsigned long long>(m.retired[i]),
                    static_cast<unsigned long long>(m.servedReads[i]),
                    m.avgReadLatency[i], m.alpha[i]);
    }
    std::printf("\nthroughput (sum IPC): %.3f\n", m.throughput());
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        opt = parseArgs(argc, argv);
    } catch (const UsageError &e) {
        std::fprintf(stderr, "camosim: %s\n", e.what());
        printUsage(stderr, argv[0]);
        return kExitUsage;
    }
    if (opt.help) {
        printUsage(stdout, argv[0]);
        return kExitOk;
    }

    try {
        return runCamosim(opt);
    } catch (const hard::ConfigError &e) {
        std::fprintf(stderr, "camosim: invalid configuration: %s\n",
                     e.what());
        return kExitConfig;
    } catch (const hard::InvariantViolation &e) {
        std::fprintf(stderr, "camosim: invariant violation: %s\n",
                     e.what());
        return kExitInvariant;
    } catch (const hard::WatchdogTimeout &e) {
        std::fprintf(stderr, "camosim: watchdog: %s\n", e.what());
        return kExitWatchdog;
    } catch (const hard::CamoError &e) {
        std::fprintf(stderr, "camosim: %s error: %s\n",
                     hard::errorKindName(e.kind()), e.what());
        return kExitRuntime;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "camosim: %s\n", e.what());
        return kExitRuntime;
    }
}
